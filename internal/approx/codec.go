package approx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"prompt/internal/tuple"
)

// codecVersion is the leading byte of every encoded estimator.
const codecVersion = 1

// ErrCodec reports a malformed or truncated estimator image. Every
// decode failure wraps it, so transports and checkpoints can classify
// corruption without string matching.
var ErrCodec = errors.New("approx: bad estimator image")

// Encode serializes the estimator — spec, window, and the live window
// partials — into a self-contained image. The merged summary is not
// serialized: Decode rebuilds it by replaying the same fold AddBatch
// performs, which is both smaller and bit-identical by construction.
//
// Layout (little-endian, varint integers, float64 as IEEE-754 bits):
//
//	[u8 version]
//	[string kind][uvarint k][uvarint depth][uvarint width]
//	[uvarint precision][uvarint seed]
//	[varint window]
//	[uvarint #partials] then per partial:
//	  [varint end][kind-specific payload]
//
// Kind payloads: Count-Min stores the non-zero cells as (row, col, val)
// triples plus the absorbed total; Space-Saving stores the canonical
// entry list plus the untracked-key offset; HLL stores the non-zero
// registers as (index, rank) pairs; samplers store the (key, value)
// items — their hash priorities are recomputed from the spec.
func (e *Estimator) Encode() []byte {
	b := []byte{codecVersion}
	b = appendString(b, string(e.spec.Kind))
	b = binary.AppendUvarint(b, uint64(e.spec.K))
	b = binary.AppendUvarint(b, uint64(e.spec.Depth))
	b = binary.AppendUvarint(b, uint64(e.spec.Width))
	b = binary.AppendUvarint(b, uint64(e.spec.Precision))
	b = binary.AppendUvarint(b, e.spec.Seed)
	b = binary.AppendVarint(b, int64(e.win))
	b = binary.AppendUvarint(b, uint64(len(e.parts)))
	for _, p := range e.parts {
		b = binary.AppendVarint(b, int64(p.end))
		switch e.spec.Kind {
		case CountMinKind:
			b = appendCountMin(b, p.cm)
		case SpaceSavingKind:
			b = appendSpaceSaving(b, p.ss)
		case HLLKind:
			b = appendHLL(b, p.hll)
		default:
			b = appendSample(b, p.samp)
		}
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendCountMin(b []byte, c *CountMin) []byte {
	cells := 0
	for _, row := range c.rows {
		for _, v := range row {
			if v != 0 {
				cells++
			}
		}
	}
	b = binary.AppendUvarint(b, uint64(cells))
	for i, row := range c.rows {
		for j, v := range row {
			if v == 0 {
				continue
			}
			b = binary.AppendUvarint(b, uint64(i))
			b = binary.AppendUvarint(b, uint64(j))
			b = appendFloat(b, v)
		}
	}
	return appendFloat(b, c.total)
}

func appendSpaceSaving(b []byte, s *SpaceSaving) []byte {
	entries := s.Entries()
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for _, e := range entries {
		b = appendString(b, e.Key)
		b = appendFloat(b, e.Est)
		b = appendFloat(b, e.Err)
	}
	return appendFloat(b, s.off)
}

func appendHLL(b []byte, h *HLL) []byte {
	nz := 0
	for _, r := range h.regs {
		if r != 0 {
			nz++
		}
	}
	b = binary.AppendUvarint(b, uint64(nz))
	for i, r := range h.regs {
		if r == 0 {
			continue
		}
		b = binary.AppendUvarint(b, uint64(i))
		b = binary.AppendUvarint(b, uint64(r))
	}
	return b
}

func appendSample(b []byte, s *Sample) []byte {
	items := s.Items()
	b = binary.AppendUvarint(b, uint64(len(items)))
	for _, it := range items {
		b = appendString(b, it.Key)
		b = appendFloat(b, it.Val)
	}
	return b
}

// imgReader is a bounds-checked cursor over one image, mirroring
// internal/migrate: every announced count is validated against the bytes
// that could possibly hold it before any slice is allocated.
type imgReader struct {
	b   []byte
	off int
}

func (r *imgReader) remaining() int { return len(r.b) - r.off }

func (r *imgReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated uvarint", ErrCodec)
	}
	r.off += n
	return v, nil
}

func (r *imgReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", ErrCodec)
	}
	r.off += n
	return v, nil
}

// count reads an element count whose encoding occupies at least minBytes
// per element — the length-bomb guard.
func (r *imgReader) count(minBytes int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(r.remaining()/minBytes) {
		return 0, fmt.Errorf("%w: count %d exceeds payload", ErrCodec, v)
	}
	return int(v), nil
}

func (r *imgReader) float() (float64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("%w: truncated float", ErrCodec)
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return math.Float64frombits(v), nil
}

func (r *imgReader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", fmt.Errorf("%w: string length %d exceeds payload", ErrCodec, n)
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *imgReader) intv() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("%w: value %d overflows", ErrCodec, v)
	}
	return int(v), nil
}

// Decode rebuilds an estimator from an image produced by Encode. The
// image is self-contained (spec and window travel inside it); callers
// holding an expected spec should compare against Spec() afterwards.
func Decode(img []byte) (*Estimator, error) {
	if len(img) < 1 {
		return nil, fmt.Errorf("%w: empty image", ErrCodec)
	}
	if img[0] != codecVersion {
		return nil, fmt.Errorf("%w: version %d, speak %d", ErrCodec, img[0], codecVersion)
	}
	r := &imgReader{b: img, off: 1}
	kindName, err := r.string()
	if err != nil {
		return nil, err
	}
	kind, err := ParseKind(kindName)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	spec := Spec{Kind: kind}
	if spec.K, err = r.intv(); err != nil {
		return nil, err
	}
	if spec.Depth, err = r.intv(); err != nil {
		return nil, err
	}
	if spec.Width, err = r.intv(); err != nil {
		return nil, err
	}
	if spec.Precision, err = r.intv(); err != nil {
		return nil, err
	}
	if spec.Seed, err = r.uvarint(); err != nil {
		return nil, err
	}
	winRaw, err := r.varint()
	if err != nil {
		return nil, err
	}
	e, err := NewEstimator(spec, tuple.Time(winRaw))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	nparts, err := r.count(2)
	if err != nil {
		return nil, err
	}
	// Allocation guard beyond the per-element count checks: the dense
	// structures (Count-Min rows, HLL registers) are sized by the spec,
	// not the payload, so bound partials × cells before building any.
	const maxCells = 1 << 22
	switch {
	case kind == CountMinKind && nparts > 0 && nparts*e.spec.Depth*e.spec.Width > maxCells:
		return nil, fmt.Errorf("%w: %d partials of a %dx%d sketch exceed the decode budget",
			ErrCodec, nparts, e.spec.Depth, e.spec.Width)
	case kind == HLLKind && nparts > 0 && nparts<<e.spec.Precision > maxCells:
		return nil, fmt.Errorf("%w: %d partials of a 2^%d-register hll exceed the decode budget",
			ErrCodec, nparts, e.spec.Precision)
	}
	var prevEnd tuple.Time
	for i := 0; i < nparts; i++ {
		endRaw, err := r.varint()
		if err != nil {
			return nil, err
		}
		end := tuple.Time(endRaw)
		if i > 0 && end < prevEnd {
			return nil, fmt.Errorf("%w: partial ends out of order", ErrCodec)
		}
		prevEnd = end
		p := partial{end: end}
		switch kind {
		case CountMinKind:
			if p.cm, err = decodeCountMin(r, e.spec); err != nil {
				return nil, err
			}
		case SpaceSavingKind:
			if p.ss, err = decodeSpaceSaving(r, e.spec); err != nil {
				return nil, err
			}
		case HLLKind:
			if p.hll, err = decodeHLL(r, e.spec); err != nil {
				return nil, err
			}
		default:
			if p.samp, err = decodeSample(r, e.spec, end); err != nil {
				return nil, err
			}
		}
		e.parts = append(e.parts, p)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCodec, r.remaining())
	}
	e.rebuild()
	return e, nil
}

func decodeCountMin(r *imgReader, spec Spec) (*CountMin, error) {
	c := NewCountMin(spec.Depth, spec.Width, spec.Seed)
	cells, err := r.count(10)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cells; i++ {
		row, err := r.intv()
		if err != nil {
			return nil, err
		}
		col, err := r.intv()
		if err != nil {
			return nil, err
		}
		if row >= spec.Depth || col >= spec.Width {
			return nil, fmt.Errorf("%w: cell (%d,%d) outside %dx%d sketch", ErrCodec, row, col, spec.Depth, spec.Width)
		}
		if c.rows[row][col], err = r.float(); err != nil {
			return nil, err
		}
	}
	if c.total, err = r.float(); err != nil {
		return nil, err
	}
	return c, nil
}

func decodeSpaceSaving(r *imgReader, spec Spec) (*SpaceSaving, error) {
	s := NewSpaceSaving(spec.K)
	n, err := r.count(17)
	if err != nil {
		return nil, err
	}
	if n > spec.K {
		return nil, fmt.Errorf("%w: %d space-saving entries exceed budget %d", ErrCodec, n, spec.K)
	}
	for i := 0; i < n; i++ {
		key, err := r.string()
		if err != nil {
			return nil, err
		}
		if _, ok := s.counts[key]; ok {
			return nil, fmt.Errorf("%w: duplicate space-saving key %q", ErrCodec, key)
		}
		e := &SSEntry{Key: key}
		if e.Est, err = r.float(); err != nil {
			return nil, err
		}
		if e.Err, err = r.float(); err != nil {
			return nil, err
		}
		s.counts[key] = e
	}
	if s.off, err = r.float(); err != nil {
		return nil, err
	}
	return s, nil
}

func decodeHLL(r *imgReader, spec Spec) (*HLL, error) {
	h := NewHLL(spec.Precision, spec.Seed)
	n, err := r.count(2)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		idx, err := r.intv()
		if err != nil {
			return nil, err
		}
		if idx >= len(h.regs) {
			return nil, fmt.Errorf("%w: register %d outside 2^%d", ErrCodec, idx, spec.Precision)
		}
		rank, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if rank == 0 || rank > uint64(64-spec.Precision+1) {
			return nil, fmt.Errorf("%w: register rank %d outside [1, %d]", ErrCodec, rank, 64-spec.Precision+1)
		}
		h.regs[idx] = uint8(rank)
	}
	return h, nil
}

func decodeSample(r *imgReader, spec Spec, end tuple.Time) (*Sample, error) {
	salt := uint64(0)
	if spec.Kind == ChainKind {
		salt = uint64(end)
	}
	s := NewSample(spec.Kind, spec.K, spec.Seed, salt)
	n, err := r.count(9)
	if err != nil {
		return nil, err
	}
	if n > spec.K {
		return nil, fmt.Errorf("%w: %d sampled items exceed budget %d", ErrCodec, n, spec.K)
	}
	for i := 0; i < n; i++ {
		key, err := r.string()
		if err != nil {
			return nil, err
		}
		if _, ok := s.items[key]; ok {
			return nil, fmt.Errorf("%w: duplicate sampled key %q", ErrCodec, key)
		}
		val, err := r.float()
		if err != nil {
			return nil, err
		}
		s.items[key] = &sampleItem{Item: Item{Key: key, Val: val}, pri: s.pri(key)}
	}
	return s, nil
}
