// Package approx is the engine's approximate-query tier: bounded-memory
// summaries that ride alongside the exact per-key reduces and answer
// point-frequency, top-k, and distinct-count queries with advertised
// error bounds. Three sketches (Count-Min, Space-Saving, HyperLogLog) and
// three window samplers (hash reservoir, chain, priority) share one
// windowed Estimator shell.
//
// Every operator is deterministic under the seeded splittable hash of
// internal/hashutil — no random state, so two runs over the same batch
// outputs produce bit-identical summaries regardless of worker count,
// ingestion layout, or transport. Every operator is mergeable, so sharded
// and columnar paths can build partials independently and combine them,
// and checkpointable through a versioned, length-bomb-guarded codec
// mirroring internal/migrate's discipline.
package approx

import (
	"fmt"
	"sort"
)

// Kind names one approximate operator.
type Kind string

// The supported operators.
const (
	// CountMinKind is a Count-Min sketch: point frequency estimates with
	// one-sided error est ∈ [true, true + e/width · N].
	CountMinKind Kind = "countmin"
	// SpaceSavingKind is the Space-Saving top-k summary with per-entry
	// overestimation bounds: est − err ≤ true ≤ est.
	SpaceSavingKind Kind = "spacesaving"
	// HLLKind is a HyperLogLog distinct counter with 2^precision
	// registers and the linear-counting small-range correction.
	HLLKind Kind = "hll"
	// ReservoirKind is a bottom-k hash reservoir: a uniform coordinated
	// sample of the window's key universe.
	ReservoirKind Kind = "reservoir"
	// ChainKind re-draws the bottom-k hash per batch (the chain-sampling
	// flavor), so the sample rotates as the window slides.
	ChainKind Kind = "chain"
	// PriorityKind is a Duffield-style priority sample: keep the k keys
	// with the largest val/u priority, biasing the sample toward heavy
	// keys.
	PriorityKind Kind = "priority"
)

// Kinds returns all operator kinds in canonical order.
func Kinds() []Kind {
	return []Kind{CountMinKind, SpaceSavingKind, HLLKind, ReservoirKind, ChainKind, PriorityKind}
}

// ParseKind converts a name into a Kind.
func ParseKind(name string) (Kind, error) {
	for _, k := range Kinds() {
		if string(k) == name {
			return k, nil
		}
	}
	return "", fmt.Errorf("approx: unknown operator kind %q", name)
}

// Spec configures one estimator. The zero value means "no approximate
// query"; any non-empty Kind enables the tier with the remaining zero
// fields taking defaults.
type Spec struct {
	// Kind selects the operator.
	Kind Kind
	// K is the counter budget of Space-Saving and the sample budget of
	// the samplers. Default 32.
	K int
	// Depth and Width size the Count-Min sketch. Defaults 4 and 2048
	// (ε = e/2048 ≈ 0.13% of the window mass).
	Depth, Width int
	// Precision is HyperLogLog's register exponent p (2^p registers).
	// Default 12.
	Precision int
	// Seed selects the splittable hash family. Default 1.
	Seed uint64
}

// Enabled reports whether the spec asks for an approximate query.
func (s Spec) Enabled() bool { return s.Kind != "" }

// WithDefaults fills unset sizing fields.
func (s Spec) WithDefaults() Spec {
	if s.K == 0 {
		s.K = 32
	}
	if s.Depth == 0 {
		s.Depth = 4
	}
	if s.Width == 0 {
		s.Width = 2048
	}
	if s.Precision == 0 {
		s.Precision = 12
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Validate rejects malformed specs (after defaults).
func (s Spec) Validate() error {
	if !s.Enabled() {
		return nil
	}
	if _, err := ParseKind(string(s.Kind)); err != nil {
		return err
	}
	d := s.WithDefaults()
	if d.K < 1 || d.K > 1<<20 {
		return fmt.Errorf("approx: K %d outside [1, 2^20]", d.K)
	}
	if d.Depth < 1 || d.Depth > 16 {
		return fmt.Errorf("approx: depth %d outside [1, 16]", d.Depth)
	}
	if d.Width < 8 || d.Width > 1<<20 {
		return fmt.Errorf("approx: width %d outside [8, 2^20]", d.Width)
	}
	if d.Precision < 4 || d.Precision > 18 {
		return fmt.Errorf("approx: precision %d outside [4, 18]", d.Precision)
	}
	return nil
}

// Entry is one ranked answer of a top-k query: the estimated value and
// the operator's overestimation bound for this key (est − Err ≤ true ≤
// est for Space-Saving; Err is zero for operators without a per-entry
// bound).
type Entry struct {
	Key string
	Val float64
	Err float64
}

// sortedKeys returns the result map's keys in ascending order — the
// canonical fold order every operator uses, so summaries are independent
// of map iteration.
func sortedKeys(result map[string]float64) []string {
	keys := make([]string, 0, len(result))
	for k := range result {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
