package reducer

import (
	"fmt"
	"math/rand"
	"testing"

	"prompt/internal/metrics"
	"prompt/internal/tuple"
)

// clustersOf builds clusters with the given sizes, keyed c0, c1, ...
func clustersOf(sizes ...int) []tuple.Cluster {
	out := make([]tuple.Cluster, len(sizes))
	for i, s := range sizes {
		out[i] = tuple.Cluster{Key: fmt.Sprintf("c%d", i), Size: s}
	}
	return out
}

func noSplits(clusters []tuple.Cluster) map[string]tuple.SplitInfo {
	ref := make(map[string]tuple.SplitInfo, len(clusters))
	for _, c := range clusters {
		ref[c.Key] = tuple.SplitInfo{Split: false, TotalSize: c.Size, Fragments: 1}
	}
	return ref
}

func TestAssignersRejectBadBuckets(t *testing.T) {
	cs := clustersOf(1, 2)
	for _, a := range []Assigner{NewHash(), NewPrompt()} {
		if _, err := a.Assign(0, cs, noSplits(cs), 0); err == nil {
			t.Errorf("%s accepted r=0", a.Name())
		}
	}
}

func TestHashAssignerConsistent(t *testing.T) {
	cs := clustersOf(5, 10, 15)
	a := NewHash()
	x, err := a.Assign(0, cs, noSplits(cs), 8)
	if err != nil {
		t.Fatal(err)
	}
	y, _ := a.Assign(0, cs, noSplits(cs), 8)
	for i := range x {
		if x[i] != y[i] {
			t.Error("hash assigner not deterministic")
		}
		if x[i] < 0 || x[i] >= 8 {
			t.Errorf("bucket %d out of range", x[i])
		}
	}
}

func TestPromptAllocatorBalancesSkewedClusters(t *testing.T) {
	// One giant cluster and many small ones: worst-fit must isolate the
	// giant and spread the rest, beating hashing on bucket BSI.
	rng := rand.New(rand.NewSource(5))
	var cs []tuple.Cluster
	cs = append(cs, tuple.Cluster{Key: "hot", Size: 1000})
	for i := 0; i < 100; i++ {
		cs = append(cs, tuple.Cluster{Key: fmt.Sprintf("c%d", i), Size: 5 + rng.Intn(20)})
	}
	ref := noSplits(cs)
	const r = 8

	loadOf := func(assign []int) []int {
		load := make([]int, r)
		for i, b := range assign {
			load[b] += cs[i].Size
		}
		return load
	}
	pa, err := NewPrompt().Assign(0, cs, ref, r)
	if err != nil {
		t.Fatal(err)
	}
	ha, err := NewHash().Assign(0, cs, ref, r)
	if err != nil {
		t.Fatal(err)
	}
	pBSI := metrics.BSISizes(loadOf(pa))
	hBSI := metrics.BSISizes(loadOf(ha))
	if pBSI >= hBSI {
		t.Errorf("prompt allocator BSI %v not better than hash %v", pBSI, hBSI)
	}
}

func TestPromptAllocatorRotationBoundsClusterCounts(t *testing.T) {
	// Equal-size clusters: rotation must deal them round-robin, so bucket
	// cluster counts differ by at most one.
	cs := clustersOf(make([]int, 50)...)
	for i := range cs {
		cs[i].Size = 10
	}
	assign, err := NewPrompt().Assign(0, cs, noSplits(cs), 8)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 8)
	for _, b := range assign {
		counts[b]++
	}
	minC, maxC := counts[0], counts[0]
	for _, c := range counts {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC-minC > 1 {
		t.Errorf("cluster counts %v differ by more than 1", counts)
	}
}

func TestPromptAllocatorSplitKeysUseHashing(t *testing.T) {
	// Split keys must route exactly where the hash assigner would put
	// them, so all Map tasks agree without coordination.
	cs := clustersOf(100, 50, 30)
	ref := noSplits(cs)
	ref["c0"] = tuple.SplitInfo{Split: true, TotalSize: 300, Fragments: 3}
	const r = 8
	pa, err := NewPrompt().Assign(0, cs, ref, r)
	if err != nil {
		t.Fatal(err)
	}
	ha, err := NewHash().Assign(0, cs, ref, r)
	if err != nil {
		t.Fatal(err)
	}
	if pa[0] != ha[0] {
		t.Errorf("split key routed to %d, hash says %d", pa[0], ha[0])
	}
}

func TestPromptAllocatorDeterministic(t *testing.T) {
	cs := clustersOf(9, 9, 7, 7, 5, 5, 3, 3)
	a, _ := NewPrompt().Assign(0, cs, noSplits(cs), 4)
	b, _ := NewPrompt().Assign(0, cs, noSplits(cs), 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("prompt allocator not deterministic")
		}
	}
}

func TestBucketSetLocality(t *testing.T) {
	bs := NewBucketSet(4)
	if err := bs.Place(tuple.Cluster{Key: "a", Size: 5}, 1); err != nil {
		t.Fatal(err)
	}
	// Same key, same bucket: allowed, counts as an extra fragment.
	if err := bs.Place(tuple.Cluster{Key: "a", Size: 3}, 1); err != nil {
		t.Fatal(err)
	}
	// Same key, different bucket: locality violation.
	if err := bs.Place(tuple.Cluster{Key: "a", Size: 2}, 2); err == nil {
		t.Error("BucketSet accepted a key in two buckets")
	}
	if got := bs.Sizes()[1]; got != 8 {
		t.Errorf("bucket 1 size %d, want 8", got)
	}
	if got := bs.ExtraFragments()[1]; got != 1 {
		t.Errorf("bucket 1 extra fragments %d, want 1", got)
	}
	if got := bs.Clusters()[1]; got != 2 {
		t.Errorf("bucket 1 clusters %d, want 2", got)
	}
	if got := bs.Keys(); got != 1 {
		t.Errorf("keys %d, want 1", got)
	}
	if b, ok := bs.BucketOf("a"); !ok || b != 1 {
		t.Errorf("BucketOf(a) = %d,%v", b, ok)
	}
	if err := bs.Place(tuple.Cluster{Key: "b", Size: 1}, 9); err == nil {
		t.Error("BucketSet accepted out-of-range bucket")
	}
}

func TestCrossMapTaskLocality(t *testing.T) {
	// Simulate two map tasks whose blocks share a split key: both must
	// land it in the same bucket via the allocator.
	shared := tuple.Cluster{Key: "split", Size: 40}
	ref := map[string]tuple.SplitInfo{
		"split": {Split: true, TotalSize: 80, Fragments: 2},
		"x":     {Split: false, TotalSize: 10, Fragments: 1},
		"y":     {Split: false, TotalSize: 12, Fragments: 1},
	}
	task1 := []tuple.Cluster{shared, {Key: "x", Size: 10}}
	task2 := []tuple.Cluster{shared, {Key: "y", Size: 12}}
	al := NewPrompt()
	const r = 6
	a1, err := al.Assign(0, task1, ref, r)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := al.Assign(1, task2, ref, r)
	if err != nil {
		t.Fatal(err)
	}
	if a1[0] != a2[0] {
		t.Errorf("split key landed in buckets %d and %d across map tasks", a1[0], a2[0])
	}
	bs := NewBucketSet(r)
	if err := bs.Place(task1[0], a1[0]); err != nil {
		t.Fatal(err)
	}
	if err := bs.Place(task2[0], a2[0]); err != nil {
		t.Fatalf("locality violated across map tasks: %v", err)
	}
}

func TestPromptAllocatorEmpty(t *testing.T) {
	out, err := NewPrompt().Assign(0, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("got %d assignments for no clusters", len(out))
	}
}
