// Package reducer implements the processing-phase partitioning (Problem
// II, Reduce-Input Partitioning): how each Map task assigns its output key
// clusters to Reduce buckets. It provides the conventional hashing assigner
// and Prompt's Reduce Bucket Allocator (Algorithm 3), a heuristic for the
// Balanced Bin Packing with Variable Capacity (B-BPVC) problem.
package reducer

import (
	"fmt"
	"slices"
	"strings"
	"sync"

	"prompt/internal/hashutil"
	"prompt/internal/tuple"
)

// Assigner decides, for one Map task, which Reduce bucket receives each of
// the task's output key clusters. Implementations must be purely local —
// deterministic given the clusters and the block reference table — because
// Map tasks share no information (the paper's "no inter-task communication"
// requirement). Key locality across Map tasks is guaranteed by routing
// split keys with the same hash function everywhere.
type Assigner interface {
	// Name identifies the technique.
	Name() string
	// Assign returns the bucket index (0..r-1) for each cluster, aligned
	// with the clusters slice. taskID identifies the Map task (its block
	// id); implementations may use it to decorrelate their local
	// decisions across tasks, but must route any split key identically
	// regardless of taskID. ref is the Map task's block reference table.
	Assign(taskID int, clusters []tuple.Cluster, ref map[string]tuple.SplitInfo, r int) ([]int, error)
}

func checkArgs(r int) error {
	if r <= 0 {
		return fmt.Errorf("reducer: need r > 0 buckets, got %d", r)
	}
	return nil
}

// HashAssigner is the conventional approach (Figure 8a): every cluster is
// routed by hashing its key, regardless of cluster sizes. Key locality is
// trivially global, but skewed clusters produce unbalanced bucket sizes.
type HashAssigner struct{}

// NewHash returns the hashing assigner.
func NewHash() *HashAssigner { return &HashAssigner{} }

// Name implements Assigner.
func (*HashAssigner) Name() string { return "hash" }

// Assign implements Assigner.
func (*HashAssigner) Assign(_ int, clusters []tuple.Cluster, _ map[string]tuple.SplitInfo, r int) ([]int, error) {
	if err := checkArgs(r); err != nil {
		return nil, err
	}
	out := make([]int, len(clusters))
	for i := range clusters {
		out[i] = hashutil.Bucket(clusters[i].Key, r)
	}
	return out, nil
}

// PromptAllocator implements Algorithm 3 (Reduce Bucket Allocator). Split
// keys are assigned by hashing so all their fragments meet at one Reduce
// task without coordination. Non-split clusters are sorted by size
// descending and placed Worst-Fit — into the candidate bucket with the most
// remaining capacity — with the chosen bucket leaving the candidate set
// until every bucket has received a cluster (rotation). Rotation bounds
// bucket overflow while promoting a balanced number of clusters per bucket.
//
// Ties in remaining capacity are broken in a bucket order rotated by the
// Map task's id. Every task starts from empty local loads, so a fixed
// tie-break would send every task's largest cluster to the same bucket;
// the rotation decorrelates the tasks' local decisions, which is what
// makes the per-task imbalances cancel additively instead of stacking.
type PromptAllocator struct {
	// NoRotation disables the remove-until-all-served candidate rotation,
	// degenerating to plain Worst-Fit. Exposed for the ablation
	// benchmarks that quantify what the rotation buys.
	NoRotation bool
}

// NewPrompt returns Prompt's reduce bucket allocator.
func NewPrompt() *PromptAllocator { return &PromptAllocator{} }

// Name implements Assigner.
func (p *PromptAllocator) Name() string {
	if p.NoRotation {
		return "prompt-norotation"
	}
	return "prompt"
}

// assignScratch is the per-call working memory of PromptAllocator.Assign,
// pooled because Map tasks call Assign once per block per batch and the
// slices' sizes repeat batch after batch. The returned assignment slice is
// never pooled — it escapes to the shuffle.
type assignScratch struct {
	load      []int
	nonSplit  []int
	available []bool
}

var assignScratchPool = sync.Pool{New: func() any { return new(assignScratch) }}

func (s *assignScratch) reset(r int) {
	if cap(s.load) < r {
		s.load = make([]int, r)
		s.available = make([]bool, r)
	}
	s.load = s.load[:r]
	s.available = s.available[:r]
	for i := 0; i < r; i++ {
		s.load[i] = 0
	}
	s.nonSplit = s.nonSplit[:0]
}

// Assign implements Assigner.
func (p *PromptAllocator) Assign(taskID int, clusters []tuple.Cluster, ref map[string]tuple.SplitInfo, r int) ([]int, error) {
	if err := checkArgs(r); err != nil {
		return nil, err
	}
	offset := taskID % r
	if offset < 0 {
		offset += r
	}
	out := make([]int, len(clusters))
	total := 0
	for i := range clusters {
		total += clusters[i].Size
	}
	bucketSize := total / r
	if total%r != 0 {
		bucketSize++
	}

	scratch := assignScratchPool.Get().(*assignScratch)
	defer assignScratchPool.Put(scratch)
	scratch.reset(r)
	load := scratch.load

	// Step 1: split keys route by hashing; their load is charged up front
	// so the residual capacities below reflect it.
	nonSplit := scratch.nonSplit // cluster indices
	for i := range clusters {
		info, ok := ref[clusters[i].Key]
		if ok && info.Split {
			b := hashutil.Bucket(clusters[i].Key, r)
			out[i] = b
			load[b] += clusters[i].Size
		} else {
			nonSplit = append(nonSplit, i)
		}
	}
	scratch.nonSplit = nonSplit

	// Step 2: sort non-split clusters by size descending (key ascending as
	// tie-break for determinism).
	slices.SortFunc(nonSplit, func(a, b int) int {
		ca, cb := clusters[a], clusters[b]
		if ca.Size != cb.Size {
			return cb.Size - ca.Size
		}
		return strings.Compare(ca.Key, cb.Key)
	})

	// Step 3: Worst-Fit with rotation. available marks candidate buckets;
	// once a bucket takes a cluster it waits until all others have too.
	available := scratch.available
	resetAvail := func() {
		for i := range available {
			available[i] = true
		}
	}
	resetAvail()
	remaining := r
	for _, ci := range nonSplit {
		// Worst fit among available buckets: max residual capacity
		// (bucketSize - load); ties broken by the task-rotated order.
		best, bestRoom := -1, 0
		for i := 0; i < r; i++ {
			b := (offset + i) % r
			if !available[b] {
				continue
			}
			room := bucketSize - load[b]
			if best == -1 || room > bestRoom {
				best, bestRoom = b, room
			}
		}
		out[ci] = best
		load[best] += clusters[ci].Size
		if p.NoRotation {
			continue
		}
		available[best] = false
		remaining--
		if remaining == 0 {
			resetAvail()
			remaining = r
		}
	}
	return out, nil
}
