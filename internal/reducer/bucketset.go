package reducer

import (
	"fmt"
	"sync"

	"prompt/internal/tuple"
)

// BucketSet accumulates the Reduce-stage input across all Map tasks of one
// micro-batch: each bucket's total size, the set of keys it holds, and the
// number of cross-Map fragments per key (which drives the per-key
// aggregation overhead in the cost model). It also enforces the key
// locality invariant — a key's clusters must land in exactly one bucket no
// matter which Map task emitted them.
//
// Locality is tracked two ways: clusters carrying a dense per-batch key
// number (tuple.Cluster.ID > 0, from the sorted-input partitioners) index
// a flat array, and ID-less clusters fall back to a string-keyed map. The
// two spaces are disjoint within a batch — one partitioner produced every
// block — so the check stays sound either way.
type BucketSet struct {
	r         int
	sizes     []int
	clusters  []int
	fragments []int          // per bucket: cluster arrivals beyond a key's first
	keyBucket map[string]int // ID-less keys -> bucket (locality tracking)
	idBucket  []int32        // dense key number -> bucket + 1 (0 = unseen)
	nKeys     int
}

// NewBucketSet returns an empty bucket set with r buckets.
func NewBucketSet(r int) *BucketSet {
	return &BucketSet{
		r:         r,
		sizes:     make([]int, r),
		clusters:  make([]int, r),
		fragments: make([]int, r),
		keyBucket: make(map[string]int),
	}
}

var bucketSetPool = sync.Pool{New: func() any { return new(BucketSet) }}

// GetBucketSet returns a pooled bucket set reset for r buckets. Release
// returns it to the pool; the engine uses this pair so the per-batch
// shuffle bookkeeping reuses its arrays batch after batch. The slices
// returned by Sizes, Clusters, and ExtraFragments are only valid until
// Release.
func GetBucketSet(r int) *BucketSet {
	bs := bucketSetPool.Get().(*BucketSet)
	bs.reset(r)
	return bs
}

// Release returns a pooled bucket set to the pool.
func (bs *BucketSet) Release() { bucketSetPool.Put(bs) }

func (bs *BucketSet) reset(r int) {
	bs.r = r
	if cap(bs.sizes) < r {
		bs.sizes = make([]int, r)
		bs.clusters = make([]int, r)
		bs.fragments = make([]int, r)
	}
	bs.sizes = bs.sizes[:r]
	bs.clusters = bs.clusters[:r]
	bs.fragments = bs.fragments[:r]
	for i := 0; i < r; i++ {
		bs.sizes[i] = 0
		bs.clusters[i] = 0
		bs.fragments[i] = 0
	}
	if bs.keyBucket == nil {
		bs.keyBucket = make(map[string]int)
	} else {
		clear(bs.keyBucket)
	}
	for i := range bs.idBucket {
		bs.idBucket[i] = 0
	}
	bs.nKeys = 0
}

// R returns the number of buckets.
func (bs *BucketSet) R() int { return bs.r }

// Place records that a Map task assigned cluster c to bucket b. It returns
// an error if the bucket index is out of range or if the key was previously
// placed in a different bucket (a key-locality violation, which would make
// the computation incorrect).
func (bs *BucketSet) Place(c tuple.Cluster, b int) error {
	if b < 0 || b >= bs.r {
		return fmt.Errorf("reducer: bucket %d out of range [0,%d)", b, bs.r)
	}
	if c.ID > 0 {
		// Dense path: the per-batch key number indexes a flat array.
		if int(c.ID) >= len(bs.idBucket) {
			grown := make([]int32, max(int(c.ID)+1, 2*len(bs.idBucket)))
			copy(grown, bs.idBucket)
			bs.idBucket = grown
		}
		switch prev := bs.idBucket[c.ID]; {
		case prev == 0:
			bs.idBucket[c.ID] = int32(b) + 1
			bs.nKeys++
		case int(prev)-1 != b:
			return fmt.Errorf("reducer: key %q assigned to bucket %d and %d (locality violation)",
				c.Key, int(prev)-1, b)
		default:
			bs.fragments[b]++ // a second fragment of the key: one extra combine
		}
	} else if prev, seen := bs.keyBucket[c.Key]; seen {
		if prev != b {
			return fmt.Errorf("reducer: key %q assigned to bucket %d and %d (locality violation)",
				c.Key, prev, b)
		}
		bs.fragments[b]++
	} else {
		bs.keyBucket[c.Key] = b
		bs.nKeys++
	}
	bs.sizes[b] += c.Size
	bs.clusters[b]++
	return nil
}

// Sizes returns the per-bucket tuple totals (the Reduce task input sizes).
func (bs *BucketSet) Sizes() []int { return bs.sizes }

// Clusters returns the per-bucket cluster counts.
func (bs *BucketSet) Clusters() []int { return bs.clusters }

// ExtraFragments returns, per bucket, the number of cluster arrivals beyond
// each key's first — the cross-Map partial results a Reduce task must
// combine before aggregating.
func (bs *BucketSet) ExtraFragments() []int { return bs.fragments }

// Keys returns the number of distinct keys placed so far.
func (bs *BucketSet) Keys() int { return bs.nKeys }

// BucketOf returns the bucket a key was placed in and whether it was seen.
// It consults the string-keyed table only, so it reports clusters placed
// without dense IDs (tests and diagnostics; the engine never needs the
// reverse lookup).
func (bs *BucketSet) BucketOf(key string) (int, bool) {
	b, ok := bs.keyBucket[key]
	return b, ok
}
