package reducer

import (
	"fmt"

	"prompt/internal/tuple"
)

// BucketSet accumulates the Reduce-stage input across all Map tasks of one
// micro-batch: each bucket's total size, the set of keys it holds, and the
// number of cross-Map fragments per key (which drives the per-key
// aggregation overhead in the cost model). It also enforces the key
// locality invariant — a key's clusters must land in exactly one bucket no
// matter which Map task emitted them.
type BucketSet struct {
	r         int
	sizes     []int
	clusters  []int
	fragments []int          // per bucket: cluster arrivals beyond a key's first
	keyBucket map[string]int // key -> bucket (locality tracking)
}

// NewBucketSet returns an empty bucket set with r buckets.
func NewBucketSet(r int) *BucketSet {
	return &BucketSet{
		r:         r,
		sizes:     make([]int, r),
		clusters:  make([]int, r),
		fragments: make([]int, r),
		keyBucket: make(map[string]int),
	}
}

// R returns the number of buckets.
func (bs *BucketSet) R() int { return bs.r }

// Place records that a Map task assigned cluster c to bucket b. It returns
// an error if the bucket index is out of range or if the key was previously
// placed in a different bucket (a key-locality violation, which would make
// the computation incorrect).
func (bs *BucketSet) Place(c tuple.Cluster, b int) error {
	if b < 0 || b >= bs.r {
		return fmt.Errorf("reducer: bucket %d out of range [0,%d)", b, bs.r)
	}
	if prev, seen := bs.keyBucket[c.Key]; seen {
		if prev != b {
			return fmt.Errorf("reducer: key %q assigned to bucket %d and %d (locality violation)",
				c.Key, prev, b)
		}
		bs.fragments[b]++ // a second fragment of the key: one extra combine
	} else {
		bs.keyBucket[c.Key] = b
	}
	bs.sizes[b] += c.Size
	bs.clusters[b]++
	return nil
}

// Sizes returns the per-bucket tuple totals (the Reduce task input sizes).
func (bs *BucketSet) Sizes() []int { return bs.sizes }

// Clusters returns the per-bucket cluster counts.
func (bs *BucketSet) Clusters() []int { return bs.clusters }

// ExtraFragments returns, per bucket, the number of cluster arrivals beyond
// each key's first — the cross-Map partial results a Reduce task must
// combine before aggregating.
func (bs *BucketSet) ExtraFragments() []int { return bs.fragments }

// Keys returns the number of distinct keys placed so far.
func (bs *BucketSet) Keys() int { return len(bs.keyBucket) }

// BucketOf returns the bucket a key was placed in and whether it was seen.
func (bs *BucketSet) BucketOf(key string) (int, bool) {
	b, ok := bs.keyBucket[key]
	return b, ok
}
