package wire

import "fmt"

// Mux is the correlation-ID envelope of multiplexed connections: it wraps
// one inner frame body so a single shard connection can carry several
// in-flight request/reply exchanges at once. The sender tags each request
// with a connection-unique Corr; the receiver processes requests in
// arrival order (preserving intern-dictionary delta ordering) and tags
// each reply with the request's Corr, so replies can return in any order
// without ambiguity.
//
// Body is a complete inner frame body — version byte onward, without the
// outer length prefix — exactly what Unmarshal parses. Wrapping rather
// than extending every message keeps the envelope orthogonal: any current
// or future frame type can travel multiplexed unchanged.
type Mux struct {
	// Corr correlates a reply with its request; unique per connection
	// among in-flight exchanges.
	Corr uint64
	// Body is the inner frame body (version byte onward).
	Body []byte
}

// WrapMux envelopes inner under the given correlation ID.
func WrapMux(corr uint64, inner Msg) (*Mux, error) {
	frame, err := Marshal(inner)
	if err != nil {
		return nil, err
	}
	return &Mux{Corr: corr, Body: frame[4:]}, nil
}

// Unwrap decodes the inner message.
func (m *Mux) Unwrap() (Msg, error) {
	inner, err := Unmarshal(m.Body)
	if err != nil {
		return nil, fmt.Errorf("wire: mux corr %d: %w", m.Corr, err)
	}
	return inner, nil
}

// WireType implements Msg.
func (m *Mux) WireType() Type { return TypeMux }

func (m *Mux) append(b []byte) []byte {
	b = appendUvarint(b, m.Corr)
	b = appendUvarint(b, uint64(len(m.Body)))
	return append(b, m.Body...)
}

func (m *Mux) decode(r *reader) error {
	corr, err := r.uvarint()
	if err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n > uint64(r.remaining()) {
		return ErrTruncated
	}
	m.Corr = corr
	// Copy out of the decoder's reusable frame buffer: the inner body may
	// outlive this Decode call (the demultiplexer hands it to a waiter).
	m.Body = append([]byte(nil), r.b[r.off:r.off+int(n)]...)
	r.off += int(n)
	return nil
}
