package wire

// Migrate ships one virtual slot's state image to its new owner during a
// rescale (the key-range handoff of the elasticity protocol). The image
// bytes are internal/migrate's own encoding — opaque to this layer, which
// only frames, sizes, and digests them — because wire depends on engine
// and therefore cannot import the migrate package the engine also uses.
type Migrate struct {
	// Batch is the epoch (batch index) the handoff commits at; a
	// recipient replacing a stripe it already holds keeps the newest.
	Batch int
	// Slot, From, To identify the handoff within the rescale plan.
	Slot int
	From int
	To   int
	// Image is the migrate-codec state image for the slot.
	Image []byte
	// Digest is the FNV-1a fingerprint of Image; the recipient echoes it
	// in MigrateAck so the sender can verify the state arrived intact.
	Digest uint64
}

// WireType implements Msg.
func (*Migrate) WireType() Type { return TypeMigrate }

func (m *Migrate) append(b []byte) []byte {
	b = appendVarint(b, int64(m.Batch))
	b = appendVarint(b, int64(m.Slot))
	b = appendVarint(b, int64(m.From))
	b = appendVarint(b, int64(m.To))
	b = appendUvarint(b, uint64(len(m.Image)))
	b = append(b, m.Image...)
	b = appendUvarint(b, m.Digest)
	return b
}

func (m *Migrate) decode(r *reader) (err error) {
	if m.Batch, err = r.intv(); err != nil {
		return err
	}
	if m.Slot, err = r.intv(); err != nil {
		return err
	}
	if m.From, err = r.intv(); err != nil {
		return err
	}
	if m.To, err = r.intv(); err != nil {
		return err
	}
	n, err := r.count(1)
	if err != nil {
		return err
	}
	m.Image = make([]byte, n)
	copy(m.Image, r.b[r.off:r.off+n])
	r.off += n
	m.Digest, err = r.uvarint()
	return err
}

// MigrateAck acknowledges a Migrate frame: the recipient echoes the slot
// and its own digest of the received image, plus how many keys the image
// carried, so the sender detects corruption or misdelivery.
type MigrateAck struct {
	Slot   int
	Digest uint64
	Keys   int
}

// WireType implements Msg.
func (*MigrateAck) WireType() Type { return TypeMigrateAck }

func (m *MigrateAck) append(b []byte) []byte {
	b = appendVarint(b, int64(m.Slot))
	b = appendUvarint(b, m.Digest)
	b = appendVarint(b, int64(m.Keys))
	return b
}

func (m *MigrateAck) decode(r *reader) (err error) {
	if m.Slot, err = r.intv(); err != nil {
		return err
	}
	if m.Digest, err = r.uvarint(); err != nil {
		return err
	}
	m.Keys, err = r.intv()
	return err
}
