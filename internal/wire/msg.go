package wire

import (
	"fmt"

	"prompt/internal/engine"
	"prompt/internal/metrics"
	"prompt/internal/tuple"
)

// Hello opens a coordinator→shard connection: the shard's position in the
// topology and the query names the coordinator runs, so a misconfigured
// shard fails the handshake instead of folding with the wrong functions.
type Hello struct {
	// Shard and Shards place this connection in the topology.
	Shard  int
	Shards int
	// Queries names the coordinator's queries in job order; the shard
	// must have been constructed with the same list.
	Queries []string
	// Interval is the coordinator's batch interval; the shard's
	// back-pressure controller judges per-batch busy time against it.
	Interval tuple.Time
}

// WireType implements Msg.
func (*Hello) WireType() Type { return TypeHello }

func (m *Hello) append(b []byte) []byte {
	b = appendVarint(b, int64(m.Shard))
	b = appendVarint(b, int64(m.Shards))
	b = appendUvarint(b, uint64(len(m.Queries)))
	for _, q := range m.Queries {
		b = appendString(b, q)
	}
	b = appendVarint(b, int64(m.Interval))
	return b
}

func (m *Hello) decode(r *reader) (err error) {
	if m.Shard, err = r.intv(); err != nil {
		return err
	}
	if m.Shards, err = r.intv(); err != nil {
		return err
	}
	n, err := r.count(1)
	if err != nil {
		return err
	}
	m.Queries = make([]string, n)
	for i := range m.Queries {
		if m.Queries[i], err = r.string(); err != nil {
			return err
		}
	}
	iv, err := r.varint()
	if err != nil {
		return err
	}
	m.Interval = tuple.Time(iv)
	return nil
}

// HelloAck completes the handshake. DictSize is how many intern-dictionary
// entries the shard already mirrors — zero on a fresh shard, nonzero after
// a coordinator reconnect — telling the coordinator where its next
// DictDelta must start.
type HelloAck struct {
	Shard    int
	DictSize uint32
	// Queries is the number of queries the shard holds (sanity echo).
	Queries int
}

// WireType implements Msg.
func (*HelloAck) WireType() Type { return TypeHelloAck }

func (m *HelloAck) append(b []byte) []byte {
	b = appendVarint(b, int64(m.Shard))
	b = appendUvarint(b, uint64(m.DictSize))
	b = appendVarint(b, int64(m.Queries))
	return b
}

func (m *HelloAck) decode(r *reader) (err error) {
	if m.Shard, err = r.intv(); err != nil {
		return err
	}
	if m.DictSize, err = r.uint32v(); err != nil {
		return err
	}
	m.Queries, err = r.intv()
	return err
}

// DictDelta extends the receiver's mirror of the coordinator's intern
// dictionary: Keys[i] interns to ID First+i. Task frames piggyback the
// delta covering every ID they reference, so key strings cross each
// connection at most once and all later references are uint32 IDs.
type DictDelta struct {
	First uint32
	Keys  []string
}

func (m *DictDelta) append(b []byte) []byte {
	b = appendUvarint(b, uint64(m.First))
	b = appendUvarint(b, uint64(len(m.Keys)))
	for _, k := range m.Keys {
		b = appendString(b, k)
	}
	return b
}

func (m *DictDelta) decode(r *reader) (err error) {
	if m.First, err = r.uint32v(); err != nil {
		return err
	}
	n, err := r.count(1)
	if err != nil {
		return err
	}
	m.Keys = make([]string, n)
	for i := range m.Keys {
		if m.Keys[i], err = r.string(); err != nil {
			return err
		}
	}
	return nil
}

// Tuple is a stream tuple with its key replaced by an intern ID.
type Tuple struct {
	TS     tuple.Time
	Val    float64
	Weight int
}

// KeySlice is one key's tuple run inside a block: the interned key, the
// partitioner's dense per-batch number (0 = none), and the tuples.
type KeySlice struct {
	KeyID  uint32
	Dense  int32
	Tuples []Tuple
}

// Block is a data block in transit: the Map-task input. The reference
// table does not travel — bucket assignment is a coordinator concern —
// so a block is just its ID and key runs.
type Block struct {
	ID   int
	Keys []KeySlice
}

func appendBlock(b []byte, bl *Block) []byte {
	b = appendVarint(b, int64(bl.ID))
	b = appendUvarint(b, uint64(len(bl.Keys)))
	for i := range bl.Keys {
		ks := &bl.Keys[i]
		b = appendUvarint(b, uint64(ks.KeyID))
		b = appendVarint(b, int64(ks.Dense))
		b = appendUvarint(b, uint64(len(ks.Tuples)))
		for j := range ks.Tuples {
			t := &ks.Tuples[j]
			b = appendVarint(b, int64(t.TS))
			b = appendFloat(b, t.Val)
			b = appendUvarint(b, uint64(t.Weight))
		}
	}
	return b
}

func decodeBlock(r *reader, bl *Block) (err error) {
	if bl.ID, err = r.intv(); err != nil {
		return err
	}
	nk, err := r.count(3)
	if err != nil {
		return err
	}
	bl.Keys = make([]KeySlice, nk)
	for i := range bl.Keys {
		ks := &bl.Keys[i]
		if ks.KeyID, err = r.uint32v(); err != nil {
			return err
		}
		dense, err := r.varint()
		if err != nil {
			return err
		}
		if int64(int32(dense)) != dense {
			return fmt.Errorf("wire: dense id %d overflows int32", dense)
		}
		ks.Dense = int32(dense)
		nt, err := r.count(10) // TS(1+) + Val(8) + Weight(1+)
		if err != nil {
			return err
		}
		ks.Tuples = make([]Tuple, nt)
		for j := range ks.Tuples {
			t := &ks.Tuples[j]
			ts, err := r.varint()
			if err != nil {
				return err
			}
			t.TS = tuple.Time(ts)
			if t.Val, err = r.float(); err != nil {
				return err
			}
			if t.Weight, err = r.uintv(); err != nil {
				return err
			}
		}
	}
	return nil
}

// MapTask carries one batch-query-stage's worth of Map work for one
// shard: every block routed to it, in global block order, prefixed by the
// dictionary delta its IDs need. Batching the whole stage into a single
// frame keeps the protocol strict request-reply — one send, one receive
// per shard per stage — which synchronous in-memory pipes require.
type MapTask struct {
	Batch int
	Query int
	Dict  DictDelta
	// Blocks are the shard's Map inputs (a subset of the batch's blocks).
	Blocks []Block
}

// WireType implements Msg.
func (*MapTask) WireType() Type { return TypeMapTask }

func (m *MapTask) append(b []byte) []byte {
	b = appendVarint(b, int64(m.Batch))
	b = appendVarint(b, int64(m.Query))
	b = m.Dict.append(b)
	b = appendUvarint(b, uint64(len(m.Blocks)))
	for i := range m.Blocks {
		b = appendBlock(b, &m.Blocks[i])
	}
	return b
}

func (m *MapTask) decode(r *reader) (err error) {
	if m.Batch, err = r.intv(); err != nil {
		return err
	}
	if m.Query, err = r.intv(); err != nil {
		return err
	}
	if err = m.Dict.decode(r); err != nil {
		return err
	}
	n, err := r.count(2)
	if err != nil {
		return err
	}
	m.Blocks = make([]Block, n)
	for i := range m.Blocks {
		if err = decodeBlock(r, &m.Blocks[i]); err != nil {
			return err
		}
	}
	return nil
}

// Cluster is one key cluster of a Map task's output with its folded
// partial value: the shuffle currency of the distributed engine.
type Cluster struct {
	KeyID uint32
	Size  int
	Dense int32
	Val   float64
}

// BlockOut is the Map outcome for one block, clusters in fold order.
type BlockOut struct {
	Clusters []Cluster
}

// MapResult answers a MapTask: one BlockOut per task block, index-
// aligned, plus the shard's current backpressure factor (piggybacked on
// every reply so the coordinator's view is at most one exchange stale).
type MapResult struct {
	Batch int
	Query int
	Outs  []BlockOut
	// Factor is the shard's AIMD admission factor in (0, 1].
	Factor float64
}

// WireType implements Msg.
func (*MapResult) WireType() Type { return TypeMapResult }

func (m *MapResult) append(b []byte) []byte {
	b = appendVarint(b, int64(m.Batch))
	b = appendVarint(b, int64(m.Query))
	b = appendUvarint(b, uint64(len(m.Outs)))
	for i := range m.Outs {
		cs := m.Outs[i].Clusters
		b = appendUvarint(b, uint64(len(cs)))
		for j := range cs {
			c := &cs[j]
			b = appendUvarint(b, uint64(c.KeyID))
			b = appendVarint(b, int64(c.Size))
			b = appendVarint(b, int64(c.Dense))
			b = appendFloat(b, c.Val)
		}
	}
	b = appendFloat(b, m.Factor)
	return b
}

func (m *MapResult) decode(r *reader) (err error) {
	if m.Batch, err = r.intv(); err != nil {
		return err
	}
	if m.Query, err = r.intv(); err != nil {
		return err
	}
	n, err := r.count(1)
	if err != nil {
		return err
	}
	m.Outs = make([]BlockOut, n)
	for i := range m.Outs {
		nc, err := r.count(11) // KeyID(1+) + Size(1+) + Dense(1+) + Val(8)
		if err != nil {
			return err
		}
		cs := make([]Cluster, nc)
		for j := range cs {
			c := &cs[j]
			if c.KeyID, err = r.uint32v(); err != nil {
				return err
			}
			if c.Size, err = r.intv(); err != nil {
				return err
			}
			dense, err := r.varint()
			if err != nil {
				return err
			}
			if int64(int32(dense)) != dense {
				return fmt.Errorf("wire: dense id %d overflows int32", dense)
			}
			c.Dense = int32(dense)
			if c.Val, err = r.float(); err != nil {
				return err
			}
		}
		m.Outs[i].Clusters = cs
	}
	m.Factor, err = r.float()
	return err
}

// Contrib is one cluster's contribution to a Reduce bucket.
type Contrib struct {
	KeyID uint32
	Val   float64
}

// Bucket is one Reduce bucket's contribution list in global fold order
// (non-commutative reduce functions depend on it).
type Bucket struct {
	Bucket   int
	Contribs []Contrib
}

// ReduceTask carries one shard's Reduce work for a batch-query stage:
// every bucket it owns, contributions pre-ordered by the coordinator.
type ReduceTask struct {
	Batch   int
	Query   int
	Dict    DictDelta
	Buckets []Bucket
}

// WireType implements Msg.
func (*ReduceTask) WireType() Type { return TypeReduceTask }

func (m *ReduceTask) append(b []byte) []byte {
	b = appendVarint(b, int64(m.Batch))
	b = appendVarint(b, int64(m.Query))
	b = m.Dict.append(b)
	b = appendUvarint(b, uint64(len(m.Buckets)))
	for i := range m.Buckets {
		bk := &m.Buckets[i]
		b = appendVarint(b, int64(bk.Bucket))
		b = appendUvarint(b, uint64(len(bk.Contribs)))
		for j := range bk.Contribs {
			c := &bk.Contribs[j]
			b = appendUvarint(b, uint64(c.KeyID))
			b = appendFloat(b, c.Val)
		}
	}
	return b
}

func (m *ReduceTask) decode(r *reader) (err error) {
	if m.Batch, err = r.intv(); err != nil {
		return err
	}
	if m.Query, err = r.intv(); err != nil {
		return err
	}
	if err = m.Dict.decode(r); err != nil {
		return err
	}
	n, err := r.count(2)
	if err != nil {
		return err
	}
	m.Buckets = make([]Bucket, n)
	for i := range m.Buckets {
		bk := &m.Buckets[i]
		if bk.Bucket, err = r.intv(); err != nil {
			return err
		}
		nc, err := r.count(9) // KeyID(1+) + Val(8)
		if err != nil {
			return err
		}
		bk.Contribs = make([]Contrib, nc)
		for j := range bk.Contribs {
			c := &bk.Contribs[j]
			if c.KeyID, err = r.uint32v(); err != nil {
				return err
			}
			if c.Val, err = r.float(); err != nil {
				return err
			}
		}
	}
	return nil
}

// BucketOut is one folded Reduce bucket: its per-key results in first-
// contribution order (the fold's natural map-free order, so results are
// deterministic without sorting).
type BucketOut struct {
	Bucket  int
	Entries []Contrib
}

// ReduceResult answers a ReduceTask, one BucketOut per task bucket,
// index-aligned, with the shard's backpressure factor piggybacked.
type ReduceResult struct {
	Batch int
	Query int
	Outs  []BucketOut
	// Factor is the shard's AIMD admission factor in (0, 1].
	Factor float64
}

// WireType implements Msg.
func (*ReduceResult) WireType() Type { return TypeReduceResult }

func (m *ReduceResult) append(b []byte) []byte {
	b = appendVarint(b, int64(m.Batch))
	b = appendVarint(b, int64(m.Query))
	b = appendUvarint(b, uint64(len(m.Outs)))
	for i := range m.Outs {
		o := &m.Outs[i]
		b = appendVarint(b, int64(o.Bucket))
		b = appendUvarint(b, uint64(len(o.Entries)))
		for j := range o.Entries {
			c := &o.Entries[j]
			b = appendUvarint(b, uint64(c.KeyID))
			b = appendFloat(b, c.Val)
		}
	}
	b = appendFloat(b, m.Factor)
	return b
}

func (m *ReduceResult) decode(r *reader) (err error) {
	if m.Batch, err = r.intv(); err != nil {
		return err
	}
	if m.Query, err = r.intv(); err != nil {
		return err
	}
	n, err := r.count(2)
	if err != nil {
		return err
	}
	m.Outs = make([]BucketOut, n)
	for i := range m.Outs {
		o := &m.Outs[i]
		if o.Bucket, err = r.intv(); err != nil {
			return err
		}
		ne, err := r.count(9)
		if err != nil {
			return err
		}
		o.Entries = make([]Contrib, ne)
		for j := range o.Entries {
			c := &o.Entries[j]
			if c.KeyID, err = r.uint32v(); err != nil {
				return err
			}
			if c.Val, err = r.float(); err != nil {
				return err
			}
		}
	}
	m.Factor, err = r.float()
	return err
}

// Report carries one engine.BatchReport — every field, bit-exact (times
// as varints, floats as IEEE bits) — so a monitoring peer reconstructs
// exactly what the coordinator committed.
type Report struct {
	Report engine.BatchReport
}

// WireType implements Msg.
func (*Report) WireType() Type { return TypeReport }

func (m *Report) append(b []byte) []byte {
	r := &m.Report
	b = appendVarint(b, int64(r.Index))
	b = appendVarint(b, int64(r.Start))
	b = appendVarint(b, int64(r.End))
	b = appendVarint(b, int64(r.Tuples))
	b = appendVarint(b, int64(r.Keys))
	b = appendVarint(b, int64(r.MapTasks))
	b = appendVarint(b, int64(r.ReduceTasks))
	b = appendVarint(b, int64(r.Cores))
	b = appendVarint(b, int64(r.CoresLost))
	b = appendVarint(b, int64(r.TaskRetries))
	b = appendVarint(b, int64(r.RecoveryAttempts))
	b = appendVarint(b, int64(r.RecoveryTime))
	b = appendVarint(b, int64(r.TuplesDropped))
	b = appendFloat(b, r.Quality.BSI)
	b = appendFloat(b, r.Quality.BCI)
	b = appendFloat(b, r.Quality.KSR)
	b = appendFloat(b, r.Quality.MPI)
	b = appendUvarint(b, uint64(len(r.BucketSizes)))
	for _, s := range r.BucketSizes {
		b = appendVarint(b, int64(s))
	}
	b = appendFloat(b, r.BucketBSI)
	b = appendVarint(b, int64(r.PartitionTime))
	b = appendVarint(b, int64(r.PartitionOverflow))
	b = appendVarint(b, int64(r.MapStageTime))
	b = appendVarint(b, int64(r.ReduceStageTime))
	b = appendUvarint(b, uint64(len(r.ReduceTaskTimes)))
	for _, t := range r.ReduceTaskTimes {
		b = appendVarint(b, int64(t))
	}
	b = appendVarint(b, int64(r.ProcessingTime))
	b = appendVarint(b, int64(r.QueueWait))
	b = appendVarint(b, int64(r.Latency))
	b = appendFloat(b, r.W)
	b = appendBool(b, r.Stable)
	return b
}

func (m *Report) decode(rd *reader) error {
	r := &m.Report
	var err error
	readTime := func(dst *tuple.Time) {
		if err != nil {
			return
		}
		var v int64
		if v, err = rd.varint(); err == nil {
			*dst = tuple.Time(v)
		}
	}
	readInt := func(dst *int) {
		if err != nil {
			return
		}
		*dst, err = rd.intv()
	}
	readFloat := func(dst *float64) {
		if err != nil {
			return
		}
		*dst, err = rd.float()
	}
	readInt(&r.Index)
	readTime(&r.Start)
	readTime(&r.End)
	readInt(&r.Tuples)
	readInt(&r.Keys)
	readInt(&r.MapTasks)
	readInt(&r.ReduceTasks)
	readInt(&r.Cores)
	readInt(&r.CoresLost)
	readInt(&r.TaskRetries)
	readInt(&r.RecoveryAttempts)
	readTime(&r.RecoveryTime)
	readInt(&r.TuplesDropped)
	r.Quality = metrics.Report{}
	readFloat(&r.Quality.BSI)
	readFloat(&r.Quality.BCI)
	readFloat(&r.Quality.KSR)
	readFloat(&r.Quality.MPI)
	if err != nil {
		return err
	}
	n, err := rd.count(1)
	if err != nil {
		return err
	}
	if n > 0 {
		r.BucketSizes = make([]int, n)
		for i := range r.BucketSizes {
			readInt(&r.BucketSizes[i])
		}
	} else {
		r.BucketSizes = nil
	}
	readFloat(&r.BucketBSI)
	readTime(&r.PartitionTime)
	readTime(&r.PartitionOverflow)
	readTime(&r.MapStageTime)
	readTime(&r.ReduceStageTime)
	if err != nil {
		return err
	}
	n, err = rd.count(1)
	if err != nil {
		return err
	}
	if n > 0 {
		r.ReduceTaskTimes = make([]tuple.Time, n)
		for i := range r.ReduceTaskTimes {
			readTime(&r.ReduceTaskTimes[i])
		}
	} else {
		r.ReduceTaskTimes = nil
	}
	readTime(&r.ProcessingTime)
	readTime(&r.QueueWait)
	readTime(&r.Latency)
	readFloat(&r.W)
	if err != nil {
		return err
	}
	r.Stable, err = rd.bool()
	return err
}

// Error reports a shard-side failure for the exchange in flight. The
// coordinator surfaces it as a transport error and falls back to local
// recomputation for that shard's work.
type Error struct {
	Msg string
}

// WireType implements Msg.
func (*Error) WireType() Type { return TypeError }

func (m *Error) append(b []byte) []byte { return appendString(b, m.Msg) }

func (m *Error) decode(r *reader) (err error) {
	m.Msg, err = r.string()
	return err
}

// Error implements error so a decoded Error frame can propagate directly.
func (m *Error) Error() string { return "wire: shard error: " + m.Msg }
