package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"prompt/internal/engine"
	"prompt/internal/metrics"
	"prompt/internal/tuple"
)

// sampleMsgs returns one fully-populated instance of every message type,
// plus zero-ish edge cases.
func sampleMsgs() []Msg {
	return []Msg{
		&Hello{Shard: 1, Shards: 3, Queries: []string{"wordcount", "sum"}, Interval: tuple.Second},
		&Hello{Queries: []string{}},
		&HelloAck{Shard: 2, DictSize: 1 << 20, Queries: 2},
		&MapTask{
			Batch: 7,
			Query: 1,
			Dict:  DictDelta{First: 4, Keys: []string{"alpha", "béta", ""}},
			Blocks: []Block{
				{
					ID: 0,
					Keys: []KeySlice{
						{KeyID: 4, Dense: 1, Tuples: []Tuple{
							{TS: -5, Val: 1.5, Weight: 1},
							{TS: 1 << 40, Val: -0.25, Weight: 3},
						}},
						{KeyID: 5, Dense: -1, Tuples: []Tuple{}},
					},
				},
				{ID: 3, Keys: []KeySlice{}},
			},
		},
		&MapTask{Dict: DictDelta{Keys: []string{}}, Blocks: []Block{}},
		&MapTaskCols{
			Batch: 9,
			Query: 0,
			Dict:  DictDelta{First: 2, Keys: []string{"gamma"}},
			Blocks: []ColBlock{
				{
					ID: 1,
					Keys: []ColKeySlice{
						{KeyID: 2, Dense: 3, Cols: tuple.ColSlice{
							TS:   []tuple.Time{-5, 1 << 40, 1<<40 + 7},
							Vals: []float64{1.5, -0.25, 0},
							W:    []int32{1, 3, 2},
						}},
						{KeyID: 0, Dense: -2, Cols: tuple.ColSlice{
							TS:   []tuple.Time{},
							Vals: []float64{},
							W:    []int32{},
						}},
					},
				},
				{ID: 4, Keys: []ColKeySlice{}},
			},
		},
		&MapTaskCols{Dict: DictDelta{Keys: []string{}}, Blocks: []ColBlock{}},
		&MapResult{
			Batch: 7,
			Query: 1,
			Outs: []BlockOut{
				{Clusters: []Cluster{
					{KeyID: 4, Size: 2, Dense: 1, Val: 1.25},
					{KeyID: 9, Size: 1, Dense: 0, Val: -3},
				}},
				{Clusters: []Cluster{}},
			},
			Factor: 0.875,
		},
		&ReduceTask{
			Batch: 8,
			Query: 0,
			Dict:  DictDelta{First: 0, Keys: []string{"k"}},
			Buckets: []Bucket{
				{Bucket: 2, Contribs: []Contrib{{KeyID: 0, Val: 4.5}, {KeyID: 7, Val: -1}}},
				{Bucket: 5, Contribs: []Contrib{}},
			},
		},
		&ReduceResult{
			Batch: 8,
			Query: 0,
			Outs: []BucketOut{
				{Bucket: 2, Entries: []Contrib{{KeyID: 0, Val: 3.5}}},
			},
			Factor: 1,
		},
		&Report{Report: engine.BatchReport{
			Index: 12, Start: 1000, End: 2000,
			Tuples: 5000, Keys: 120,
			MapTasks: 8, ReduceTasks: 8, Cores: 7, CoresLost: 1,
			TaskRetries: 2, RecoveryAttempts: 1, RecoveryTime: 333,
			TuplesDropped: 4,
			Quality:       metrics.Report{BSI: 0.1, BCI: 0.2, KSR: 1.5, MPI: 0.3},
			BucketSizes:   []int{10, 20, 0, 5},
			BucketBSI:     0.07,
			PartitionTime: 150, PartitionOverflow: 50,
			MapStageTime: 400, ReduceStageTime: 300,
			ReduceTaskTimes: []tuple.Time{70, 80, 75, 75},
			ProcessingTime:  800, QueueWait: 100, Latency: 1900,
			W: 0.8, Stable: true,
		}},
		&Report{},
		&Error{Msg: "shard 1: query index out of range"},
		&Error{},
		&Migrate{Batch: 6, Slot: 13, From: 1, To: 2, Image: []byte{1, 0xFF, 0, 42}, Digest: 1 << 60},
		&Migrate{Image: []byte{}},
		&MigrateAck{Slot: 13, Digest: 1 << 60, Keys: 9},
		&MigrateAck{},
		&Sketch{Query: 1, Kind: "countmin", State: []byte{1, 0, 0xFF, 7}},
		&Sketch{Kind: "", State: []byte{}},
	}
}

func TestRoundTripAllMessages(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	msgs := sampleMsgs()
	for _, m := range msgs {
		if err := enc.Encode(m); err != nil {
			t.Fatalf("Encode(%v): %v", m.WireType(), err)
		}
	}
	dec := NewDecoder(&buf)
	for i, want := range msgs {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("Decode #%d (%v): %v", i, want.WireType(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip #%d (%v):\n got  %#v\n want %#v", i, want.WireType(), got, want)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Errorf("after all frames: got %v, want io.EOF", err)
	}
}

func TestMarshalUnmarshalFrame(t *testing.T) {
	for _, want := range sampleMsgs() {
		frame, err := Marshal(want)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", want.WireType(), err)
		}
		got, err := UnmarshalFrame(frame)
		if err != nil {
			t.Fatalf("UnmarshalFrame(%v): %v", want.WireType(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: got %#v, want %#v", want.WireType(), got, want)
		}
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	frame, err := Marshal(&Error{Msg: "x"})
	if err != nil {
		t.Fatal(err)
	}
	frame[4] = Version + 1 // version byte follows the 4-byte length
	if _, err := UnmarshalFrame(frame); !errors.Is(err, ErrVersion) {
		t.Errorf("got %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsUnknownType(t *testing.T) {
	frame, err := Marshal(&Error{Msg: "x"})
	if err != nil {
		t.Fatal(err)
	}
	frame[5] = 0xEE
	if _, err := UnmarshalFrame(frame); !errors.Is(err, ErrType) {
		t.Errorf("got %v, want ErrType", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	full, err := Marshal(&MapTask{
		Dict:   DictDelta{Keys: []string{"key"}},
		Blocks: []Block{{ID: 1, Keys: []KeySlice{{KeyID: 0, Tuples: []Tuple{{TS: 1, Val: 2, Weight: 1}}}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix of the body must fail decode, not panic.
	body := full[4:]
	for n := 2; n < len(body); n++ {
		if _, err := Unmarshal(body[:n]); err == nil {
			t.Errorf("Unmarshal of %d/%d-byte prefix unexpectedly succeeded", n, len(body))
		}
	}
}

func TestDecodeRejectsLengthBomb(t *testing.T) {
	// A MapTask whose dict announces 2^30 keys in a 16-byte payload must
	// be rejected before any allocation.
	body := []byte{Version, byte(TypeMapTask),
		0, 0, // batch, query
		0,                          // dict first
		0x80, 0x80, 0x80, 0x80, 4, // dict key count: 2^30
	}
	if _, err := Unmarshal(body); !errors.Is(err, ErrTruncated) {
		t.Errorf("got %v, want ErrTruncated", err)
	}
}

func TestDecoderRejectsOversizeFrame(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF} // 4 GiB body announcement
	_, err := NewDecoder(bytes.NewReader(hdr)).Decode()
	if !errors.Is(err, ErrFrameSize) {
		t.Errorf("got %v, want ErrFrameSize", err)
	}
}

func TestErrorImplementsError(t *testing.T) {
	var e error = &Error{Msg: "boom"}
	if e.Error() != "wire: shard error: boom" {
		t.Errorf("got %q", e.Error())
	}
}
