package wire

import (
	"bytes"
	"testing"

	"prompt/internal/approx"
	"prompt/internal/tuple"
)

// FuzzWireFrame feeds arbitrary bytes to the frame decoder. Properties:
// decoding never panics or over-allocates (the length guards make a
// corrupt frame fail fast), and any body that does decode re-encodes to
// a frame that decodes back to the same message (canonical round trip).
func FuzzWireFrame(f *testing.F) {
	for _, m := range sampleMsgs() {
		frame, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version, byte(TypeMapTask)})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, body []byte) {
		checkCanonical(t, body)
	})
}

// FuzzColumnsFrame concentrates the fuzzer on the columnar task frame:
// every input is decoded as a MapTaskCols body (the delta-timestamp and
// column-length guards are the newest decode surface), with the same
// never-panic and canonical-round-trip properties as FuzzWireFrame.
func FuzzColumnsFrame(f *testing.F) {
	for _, m := range sampleMsgs() {
		if _, ok := m.(*MapTaskCols); !ok {
			continue
		}
		frame, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:][2:]) // payload without version/type bytes
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, payload []byte) {
		body := append([]byte{Version, byte(TypeMapTaskCols)}, payload...)
		checkCanonical(t, body)
	})
}

// FuzzMigrateFrame concentrates the fuzzer on the state-migration frame:
// every input is decoded as a Migrate body (the opaque-image length guard
// is the newest decode surface), with the same never-panic and canonical
// round-trip properties as FuzzWireFrame.
func FuzzMigrateFrame(f *testing.F) {
	for _, m := range sampleMsgs() {
		if _, ok := m.(*Migrate); !ok {
			continue
		}
		frame, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:][2:]) // payload without version/type bytes
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, payload []byte) {
		body := append([]byte{Version, byte(TypeMigrate)}, payload...)
		checkCanonical(t, body)
	})
}

// FuzzSketchFrame concentrates the fuzzer on the approximate-summary
// frame: every input is decoded as a Sketch body, with the same
// never-panic and canonical round-trip properties as FuzzWireFrame, and
// any opaque state that survives the frame is additionally fed to the
// approx codec, which must reject corruption cleanly (never panic or
// over-allocate).
func FuzzSketchFrame(f *testing.F) {
	for _, m := range sampleMsgs() {
		if _, ok := m.(*Sketch); !ok {
			continue
		}
		frame, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:][2:]) // payload without version/type bytes
	}
	for _, kind := range approx.Kinds() {
		est, err := approx.NewEstimator(approx.Spec{Kind: kind, K: 4, Depth: 2, Width: 16, Precision: 4}, tuple.Second)
		if err != nil {
			f.Fatal(err)
		}
		if err := est.AddBatch(tuple.Second, map[string]float64{"a": 2, "b": 1}); err != nil {
			f.Fatal(err)
		}
		frame, err := Marshal(&Sketch{Kind: string(kind), State: est.Encode()})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:][2:])
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, payload []byte) {
		body := append([]byte{Version, byte(TypeSketch)}, payload...)
		checkCanonical(t, body)
		m, err := Unmarshal(body)
		if err != nil {
			return
		}
		sk := m.(*Sketch)
		est, err := approx.Decode(sk.State)
		if err != nil {
			return
		}
		// Any state that decodes canonicalizes to a fixed point: its
		// re-encoding decodes to an estimator that encodes identically.
		canon := est.Encode()
		est2, err := approx.Decode(canon)
		if err != nil {
			t.Fatalf("re-decode of canonical %q image failed: %v", est.Kind(), err)
		}
		if !bytes.Equal(est2.Encode(), canon) {
			t.Fatalf("approx canonicalization diverged for kind %q", est.Kind())
		}
	})
}

// checkCanonical asserts the codec's fuzz properties on one frame body:
// decoding never panics, and any body that decodes re-encodes to a frame
// that decodes back to the same message.
func checkCanonical(t *testing.T, body []byte) {
	t.Helper()
	m, err := Unmarshal(body)
	if err != nil {
		return
	}
	frame, err := Marshal(m)
	if err != nil {
		t.Fatalf("re-encode of decoded %v failed: %v", m.WireType(), err)
	}
	m2, err := UnmarshalFrame(frame)
	if err != nil {
		t.Fatalf("decode of re-encoded %v failed: %v", m.WireType(), err)
	}
	// Compare at the byte level: floats travel as IEEE bits, so this
	// is exact even for NaN payloads (where DeepEqual would balk).
	frame2, err := Marshal(m2)
	if err != nil {
		t.Fatalf("re-encode of round-tripped %v failed: %v", m.WireType(), err)
	}
	if !bytes.Equal(frame, frame2) {
		t.Fatalf("canonical round trip diverged:\n first  %x\n second %x", frame, frame2)
	}
}
