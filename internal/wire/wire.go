// Package wire is the compact binary codec of the distributed runtime:
// length-prefixed, versioned frames carrying tuple blocks, intern-
// dictionary deltas, Map/Reduce task exchanges, back-pressure factors,
// and BatchReports between a coordinator and its engine shards.
//
// Frame layout (little-endian):
//
//	[u32 body length][u8 version][u8 type][payload]
//
// Integers are varint-encoded (unsigned where the domain allows, zigzag
// otherwise), strings are length-prefixed UTF-8, and float64s travel as
// their IEEE-754 bits in 8 fixed bytes. Key strings cross the wire at
// most once per connection: task frames carry an intern-dictionary delta
// (DictDelta) and every later reference is a uint32 id, mirroring the
// engine's stream-lifetime intern.Dict.
//
// The codec is deliberately asymmetric-version tolerant: a decoder
// rejects frames whose version it does not speak with ErrVersion instead
// of misparsing them, and every length field is validated against the
// remaining payload before allocation, so a corrupt or adversarial frame
// fails cleanly (fuzzed by FuzzWireFrame).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Version is the frame format version this package speaks.
const Version = 1

// MaxFrame bounds a frame body; larger announcements are rejected before
// allocation. 1 GiB comfortably holds the largest batch the engine
// produces while stopping length-bomb frames.
const MaxFrame = 1 << 30

// Sentinel decode errors.
var (
	// ErrVersion reports a frame with an unsupported version byte.
	ErrVersion = errors.New("wire: unsupported frame version")
	// ErrType reports a frame with an unknown type byte.
	ErrType = errors.New("wire: unknown frame type")
	// ErrTruncated reports a payload shorter than its fields announce.
	ErrTruncated = errors.New("wire: truncated payload")
	// ErrFrameSize reports a frame body exceeding MaxFrame.
	ErrFrameSize = errors.New("wire: frame exceeds size bound")
)

// Type tags a frame's payload.
type Type uint8

// Frame types. The zero value is invalid so an all-zero frame never
// parses as a message.
const (
	TypeHello Type = iota + 1
	TypeHelloAck
	TypeMapTask
	TypeMapResult
	TypeReduceTask
	TypeReduceResult
	TypeReport
	TypeError
	TypeMapTaskCols
	TypeMigrate
	TypeMigrateAck
	TypeMux
	TypeSketch
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeHelloAck:
		return "hello-ack"
	case TypeMapTask:
		return "map-task"
	case TypeMapResult:
		return "map-result"
	case TypeReduceTask:
		return "reduce-task"
	case TypeReduceResult:
		return "reduce-result"
	case TypeReport:
		return "report"
	case TypeError:
		return "error"
	case TypeMapTaskCols:
		return "map-task-cols"
	case TypeMigrate:
		return "migrate"
	case TypeMigrateAck:
		return "migrate-ack"
	case TypeMux:
		return "mux"
	case TypeSketch:
		return "sketch"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Msg is one decoded frame payload.
type Msg interface {
	// WireType tags the message's frame.
	WireType() Type
	// append encodes the payload onto b.
	append(b []byte) []byte
	// decode parses the payload from r.
	decode(r *reader) error
}

// --- primitive append helpers -------------------------------------------

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// --- primitive reader ----------------------------------------------------

// reader is a bounds-checked cursor over one frame payload. Every read
// method reports ErrTruncated instead of panicking when the payload runs
// out, and every announced element count is checked against the bytes
// that could possibly hold it before any slice is allocated.
type reader struct {
	b   []byte
	off int
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

// count reads an element count whose per-element encoding occupies at
// least minBytes bytes, rejecting counts the remaining payload cannot
// hold (the length-bomb guard).
func (r *reader) count(minBytes int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(r.remaining()/minBytes) {
		return 0, ErrTruncated
	}
	return int(v), nil
}

func (r *reader) float() (float64, error) {
	if r.remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return math.Float64frombits(v), nil
}

func (r *reader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", ErrTruncated
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) bool() (bool, error) {
	if r.remaining() < 1 {
		return false, ErrTruncated
	}
	v := r.b[r.off]
	r.off++
	if v > 1 {
		return false, fmt.Errorf("wire: bad bool byte %d", v)
	}
	return v == 1, nil
}

// intv reads a varint into a host int, rejecting values outside the int
// range on 32-bit hosts.
func (r *reader) intv() (int, error) {
	v, err := r.varint()
	if err != nil {
		return 0, err
	}
	if int64(int(v)) != v {
		return 0, fmt.Errorf("wire: varint %d overflows int", v)
	}
	return int(v), nil
}

// uintv reads a uvarint into a host int (for counts and sizes known to
// be non-negative).
func (r *reader) uintv() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt {
		return 0, fmt.Errorf("wire: uvarint %d overflows int", v)
	}
	return int(v), nil
}

func (r *reader) uint32v() (uint32, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxUint32 {
		return 0, fmt.Errorf("wire: uvarint %d overflows uint32", v)
	}
	return uint32(v), nil
}

// --- Encoder / Decoder ---------------------------------------------------

// Encoder writes frames onto a stream. Each Encode emits exactly one
// Write call, so frames never interleave even when the underlying writer
// is an unbuffered socket shared with a deadline manager. Not safe for
// concurrent use; connections serialize sends.
type Encoder struct {
	w   io.Writer
	buf []byte
}

// NewEncoder returns an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Encode frames and writes one message.
func (e *Encoder) Encode(m Msg) error {
	b := e.buf[:0]
	b = append(b, 0, 0, 0, 0) // length placeholder
	b = append(b, Version, byte(m.WireType()))
	b = m.append(b)
	body := len(b) - 4
	if body > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameSize, body)
	}
	binary.LittleEndian.PutUint32(b[:4], uint32(body))
	e.buf = b[:0] // recycle the arena across frames
	_, err := e.w.Write(b)
	return err
}

// Marshal encodes one message into a standalone frame (header included).
// It is Encode without a stream — the transports that carry whole frames
// as discrete messages (Loopback) use it.
func Marshal(m Msg) ([]byte, error) {
	b := make([]byte, 4, 64)
	b = append(b, Version, byte(m.WireType()))
	b = m.append(b)
	body := len(b) - 4
	if body > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameSize, body)
	}
	binary.LittleEndian.PutUint32(b[:4], uint32(body))
	return b, nil
}

// Decoder reads frames from a stream. Not safe for concurrent use.
type Decoder struct {
	r   io.Reader
	hdr [4]byte
	buf []byte
}

// NewDecoder returns a decoder reading from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Decode reads and parses one frame. io.EOF is returned unwrapped when
// the stream ends cleanly between frames.
func (d *Decoder) Decode() (Msg, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(d.hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameSize, n)
	}
	if n < 2 {
		return nil, fmt.Errorf("%w: %d-byte body", ErrTruncated, n)
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	body := d.buf[:n]
	if _, err := io.ReadFull(d.r, body); err != nil {
		return nil, fmt.Errorf("wire: reading frame body: %w", err)
	}
	return Unmarshal(body)
}

// Unmarshal parses one frame body (version byte onward, without the
// length prefix).
func Unmarshal(body []byte) (Msg, error) {
	if len(body) < 2 {
		return nil, ErrTruncated
	}
	if body[0] != Version {
		return nil, fmt.Errorf("%w: got %d, speak %d", ErrVersion, body[0], Version)
	}
	var m Msg
	switch Type(body[1]) {
	case TypeHello:
		m = &Hello{}
	case TypeHelloAck:
		m = &HelloAck{}
	case TypeMapTask:
		m = &MapTask{}
	case TypeMapResult:
		m = &MapResult{}
	case TypeReduceTask:
		m = &ReduceTask{}
	case TypeReduceResult:
		m = &ReduceResult{}
	case TypeReport:
		m = &Report{}
	case TypeError:
		m = &Error{}
	case TypeMapTaskCols:
		m = &MapTaskCols{}
	case TypeMigrate:
		m = &Migrate{}
	case TypeMigrateAck:
		m = &MigrateAck{}
	case TypeMux:
		m = &Mux{}
	case TypeSketch:
		m = &Sketch{}
	default:
		return nil, fmt.Errorf("%w: %d", ErrType, body[1])
	}
	r := &reader{b: body, off: 2}
	if err := m.decode(r); err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %v payload", r.remaining(), m.WireType())
	}
	return m, nil
}

// UnmarshalFrame parses a standalone frame produced by Marshal (length
// prefix included).
func UnmarshalFrame(frame []byte) (Msg, error) {
	if len(frame) < 4 {
		return nil, ErrTruncated
	}
	n := binary.LittleEndian.Uint32(frame[:4])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameSize, n)
	}
	if uint32(len(frame)-4) != n {
		return nil, fmt.Errorf("%w: header says %d bytes, frame carries %d", ErrTruncated, n, len(frame)-4)
	}
	return Unmarshal(frame[4:])
}
