package wire

import (
	"fmt"
	"math"

	"prompt/internal/tuple"
)

// ColKeySlice is one key's tuple run inside a columnar block: the
// interned key, the partitioner's dense per-batch number (0 = none), and
// the struct-of-arrays columns. On the wire the timestamp column is
// delta-encoded (first value absolute, then zigzag-varint gaps — batch
// timestamps are near-sorted and tightly clustered, so gaps compress far
// better than absolute values), values travel as IEEE bits, and weights
// as uvarints.
type ColKeySlice struct {
	KeyID uint32
	Dense int32
	Cols  tuple.ColSlice
}

// ColBlock is a data block in columnar form: the Map-task input when the
// coordinator's partitioner ran on the columnar hot path. It mirrors
// Block exactly except that each key's tuples stay in their dense
// column layout end to end — no row materialization on either side of
// the wire.
type ColBlock struct {
	ID   int
	Keys []ColKeySlice
}

func appendColBlock(b []byte, bl *ColBlock) []byte {
	b = appendVarint(b, int64(bl.ID))
	b = appendUvarint(b, uint64(len(bl.Keys)))
	for i := range bl.Keys {
		ks := &bl.Keys[i]
		b = appendUvarint(b, uint64(ks.KeyID))
		b = appendVarint(b, int64(ks.Dense))
		b = appendUvarint(b, uint64(ks.Cols.Len()))
		prev := tuple.Time(0)
		for _, ts := range ks.Cols.TS {
			b = appendVarint(b, int64(ts-prev))
			prev = ts
		}
		for _, v := range ks.Cols.Vals {
			b = appendFloat(b, v)
		}
		for _, w := range ks.Cols.W {
			b = appendUvarint(b, uint64(uint32(w)))
		}
	}
	return b
}

func decodeColBlock(r *reader, bl *ColBlock) (err error) {
	if bl.ID, err = r.intv(); err != nil {
		return err
	}
	nk, err := r.count(3)
	if err != nil {
		return err
	}
	bl.Keys = make([]ColKeySlice, nk)
	for i := range bl.Keys {
		ks := &bl.Keys[i]
		if ks.KeyID, err = r.uint32v(); err != nil {
			return err
		}
		dense, err := r.varint()
		if err != nil {
			return err
		}
		if int64(int32(dense)) != dense {
			return fmt.Errorf("wire: dense id %d overflows int32", dense)
		}
		ks.Dense = int32(dense)
		n, err := r.count(10) // TS delta(1+) + Val(8) + W(1+)
		if err != nil {
			return err
		}
		cols := tuple.ColSlice{
			TS:   make([]tuple.Time, n),
			Vals: make([]float64, n),
			W:    make([]int32, n),
		}
		prev := tuple.Time(0)
		for j := range cols.TS {
			d, err := r.varint()
			if err != nil {
				return err
			}
			prev += tuple.Time(d)
			cols.TS[j] = prev
		}
		for j := range cols.Vals {
			if cols.Vals[j], err = r.float(); err != nil {
				return err
			}
		}
		for j := range cols.W {
			w, err := r.uvarint()
			if err != nil {
				return err
			}
			if w > math.MaxUint32 {
				return fmt.Errorf("wire: weight %d overflows uint32", w)
			}
			cols.W[j] = int32(uint32(w))
		}
		ks.Cols = cols
	}
	return nil
}

// MapTaskCols is MapTask with columnar payload: the frame the
// coordinator sends when its blocks carry ColSlice key runs (the
// partitioner ran in column mode), sparing both sides the transpose.
// Semantics — one frame per shard per stage, dictionary delta first —
// are identical to MapTask, and a shard answers either frame with the
// same MapResult.
type MapTaskCols struct {
	Batch int
	Query int
	Dict  DictDelta
	// Blocks are the shard's Map inputs (a subset of the batch's blocks).
	Blocks []ColBlock
}

// WireType implements Msg.
func (*MapTaskCols) WireType() Type { return TypeMapTaskCols }

func (m *MapTaskCols) append(b []byte) []byte {
	b = appendVarint(b, int64(m.Batch))
	b = appendVarint(b, int64(m.Query))
	b = m.Dict.append(b)
	b = appendUvarint(b, uint64(len(m.Blocks)))
	for i := range m.Blocks {
		b = appendColBlock(b, &m.Blocks[i])
	}
	return b
}

func (m *MapTaskCols) decode(r *reader) (err error) {
	if m.Batch, err = r.intv(); err != nil {
		return err
	}
	if m.Query, err = r.intv(); err != nil {
		return err
	}
	if err = m.Dict.decode(r); err != nil {
		return err
	}
	n, err := r.count(2)
	if err != nil {
		return err
	}
	m.Blocks = make([]ColBlock, n)
	for i := range m.Blocks {
		if err = decodeColBlock(r, &m.Blocks[i]); err != nil {
			return err
		}
	}
	return nil
}
