package wire

// Sketch ships one query's approximate summary between shards: the
// opaque State is the versioned approx codec image (internal/approx),
// so a coordinator can fold shard partials or install a checkpointed
// summary without re-seeing any raw keys. Kind is carried redundantly
// next to the image so a receiver can reject a mismatched operator
// before decoding the state.
type Sketch struct {
	// Query is the query index the summary belongs to.
	Query int
	// Kind names the approximate operator ("countmin", "hll", ...).
	Kind string
	// State is the approx codec image.
	State []byte
}

// WireType implements Msg.
func (*Sketch) WireType() Type { return TypeSketch }

func (s *Sketch) append(b []byte) []byte {
	b = appendVarint(b, int64(s.Query))
	b = appendString(b, s.Kind)
	b = appendUvarint(b, uint64(len(s.State)))
	return append(b, s.State...)
}

func (s *Sketch) decode(r *reader) (err error) {
	if s.Query, err = r.intv(); err != nil {
		return err
	}
	if s.Kind, err = r.string(); err != nil {
		return err
	}
	n, err := r.count(1)
	if err != nil {
		return err
	}
	s.State = make([]byte, n)
	copy(s.State, r.b[r.off:r.off+n])
	r.off += n
	return nil
}
