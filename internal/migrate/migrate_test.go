package migrate

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"prompt/internal/intern"
	"prompt/internal/tuple"
	"prompt/internal/window"
)

func TestOwnerIsTotalAndStable(t *testing.T) {
	for owners := 1; owners <= 8; owners++ {
		for s := 0; s < NumSlots; s++ {
			o := Owner(s, owners)
			if o < 0 || o >= owners {
				t.Fatalf("Owner(%d, %d) = %d out of range", s, owners, o)
			}
		}
	}
	if Owner(5, 0) != Owner(5, 1) {
		t.Fatalf("owners<1 must behave as a single owner")
	}
}

func TestPlanMovesOnlyChangedSlots(t *testing.T) {
	for from := 1; from <= 4; from++ {
		for to := 1; to <= 4; to++ {
			plan := Plan(from, to)
			moved := make(map[int]bool)
			for _, h := range plan {
				if h.From == h.To {
					t.Fatalf("Plan(%d,%d) contains no-op handoff %+v", from, to, h)
				}
				if h.From != Owner(h.Slot, from) || h.To != Owner(h.Slot, to) {
					t.Fatalf("Plan(%d,%d) handoff %+v disagrees with Owner", from, to, h)
				}
				moved[h.Slot] = true
			}
			for s := 0; s < NumSlots; s++ {
				changed := Owner(s, from) != Owner(s, to)
				if changed != moved[s] {
					t.Fatalf("Plan(%d,%d): slot %d changed=%v moved=%v", from, to, s, changed, moved[s])
				}
			}
			if from == to && len(plan) != 0 {
				t.Fatalf("Plan(%d,%d) must be empty, got %d handoffs", from, to, len(plan))
			}
		}
	}
}

// keysInSlot returns distinct keys hashing to the given slot (and one that
// does not), so extraction tests can target a slot deterministically.
func keysInSlot(t *testing.T, slot, n int) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < n && i < 100000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if SlotOf(k) == slot {
			out = append(out, k)
		}
	}
	if len(out) < n {
		t.Fatalf("could not find %d keys in slot %d", n, slot)
	}
	return out
}

func newAgg(t *testing.T, inverse window.ReduceFn) *window.Aggregator {
	t.Helper()
	ag, err := window.NewAggregator(window.Sliding(3*tuple.Second, tuple.Second), window.Sum, inverse)
	if err != nil {
		t.Fatal(err)
	}
	return ag
}

// TestExtractApplyRoundTrip extracts a slot's keys, round-trips the image
// through the codec, applies it back, and demands bit-identical snapshots —
// for both the invertible (Sum) and no-inverse (Max) maintenance paths.
func TestExtractApplyRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name    string
		reduce  window.ReduceFn
		inverse window.ReduceFn
	}{
		{"sum-inverse", window.Sum, window.SumInverse},
		{"max-no-inverse", window.Max, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			slot := 7
			keys := keysInSlot(t, slot, 3)
			other := keysInSlot(t, (slot+1)%NumSlots, 2)

			mk := func() *window.Aggregator {
				ag, err := window.NewAggregator(window.Sliding(3*tuple.Second, tuple.Second), tc.reduce, tc.inverse)
				if err != nil {
					t.Fatal(err)
				}
				return ag
			}
			ag, ref := mk(), mk()
			dict := intern.NewDict(0)
			for _, k := range append(append([]string{}, keys...), other...) {
				dict.Intern(k)
			}
			for b := 1; b <= 4; b++ {
				m := map[string]float64{}
				for i, k := range keys {
					// Mid-window: not every key appears in every batch.
					if (b+i)%2 == 0 {
						m[k] = float64(b * (i + 1))
					}
				}
				for i, k := range other {
					m[k] = float64(b + i)
				}
				end := tuple.Time(b) * tuple.Second
				if err := ag.AddBatch(end, m); err != nil {
					t.Fatal(err)
				}
				if err := ref.AddBatch(end, m); err != nil {
					t.Fatal(err)
				}
			}

			img := Extract(slot, 4, 1, 2, []*window.Aggregator{ag}, dict)
			if img.Keys() == 0 {
				t.Fatalf("expected keys extracted from slot %d", slot)
			}
			for _, k := range keys {
				if _, ok := ag.Value(k); ok {
					t.Fatalf("key %q still present after extraction", k)
				}
			}
			for _, k := range other {
				if _, ok := ag.Value(k); !ok {
					t.Fatalf("unrelated key %q lost by extraction", k)
				}
			}

			enc := img.Encode()
			dec, err := Decode(enc)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(img, dec) {
				t.Fatalf("image round trip mismatch:\n  %+v\n  %+v", img, dec)
			}
			if !bytes.Equal(enc, dec.Encode()) {
				t.Fatalf("re-encoding decoded image produced different bytes")
			}
			if Digest(enc) != Digest(dec.Encode()) {
				t.Fatalf("digest mismatch across round trip")
			}

			if err := Apply(dec, []*window.Aggregator{ag}, dict); err != nil {
				t.Fatalf("Apply: %v", err)
			}
			if got, want := ag.Snapshot(), ref.Snapshot(); !reflect.DeepEqual(got, want) {
				t.Fatalf("post-migration snapshot mismatch:\n  got  %v\n  want %v", got, want)
			}
			if got, want := ag.State(), ref.State(); !reflect.DeepEqual(got, want) {
				t.Fatalf("post-migration batch state mismatch:\n  got  %v\n  want %v", got, want)
			}
		})
	}
}

// TestExtractEmptySlot: migrating a slot none of the live keys hash to must
// produce a keyless image that still applies cleanly.
func TestExtractEmptySlot(t *testing.T) {
	ag := newAgg(t, window.SumInverse)
	dict := intern.NewDict(0)
	slot := 9
	other := keysInSlot(t, (slot+1)%NumSlots, 2)
	m := map[string]float64{}
	for i, k := range other {
		dict.Intern(k)
		m[k] = float64(i + 1)
	}
	if err := ag.AddBatch(tuple.Second, m); err != nil {
		t.Fatal(err)
	}
	before := ag.Snapshot()

	img := Extract(slot, 1, 1, 2, []*window.Aggregator{ag}, dict)
	if img.Keys() != 0 {
		t.Fatalf("expected empty image, got %d keys", img.Keys())
	}
	dec, err := Decode(img.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(dec, []*window.Aggregator{ag}, dict); err != nil {
		t.Fatal(err)
	}
	if got := ag.Snapshot(); !reflect.DeepEqual(got, before) {
		t.Fatalf("empty migration changed the window: %v vs %v", got, before)
	}
}

// TestApplyOntoFreshOwner: the recipient starts with an empty dictionary and
// aggregators whose batch list matches the donor's Ends but has no matching
// keys — the fresh-owner shape of a scale-up.
func TestApplyOntoFreshOwner(t *testing.T) {
	slot := 3
	keys := keysInSlot(t, slot, 2)
	donor, recipient := newAgg(t, window.SumInverse), newAgg(t, window.SumInverse)
	donorDict, recDict := intern.NewDict(0), intern.NewDict(0)
	for _, k := range keys {
		donorDict.Intern(k)
	}
	for b := 1; b <= 3; b++ {
		m := map[string]float64{keys[0]: float64(b), keys[1]: float64(2 * b)}
		end := tuple.Time(b) * tuple.Second
		if err := donor.AddBatch(end, m); err != nil {
			t.Fatal(err)
		}
		// Recipient saw the same batch boundaries but none of these keys.
		if err := recipient.AddBatch(end, map[string]float64{}); err != nil {
			t.Fatal(err)
		}
	}
	want := donor.Snapshot()
	img := Extract(slot, 3, 1, 2, []*window.Aggregator{donor}, donorDict)
	dec, err := Decode(img.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(dec, []*window.Aggregator{recipient}, recDict); err != nil {
		t.Fatal(err)
	}
	if got := recipient.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("fresh owner snapshot mismatch: got %v want %v", got, want)
	}
	// IDs are dictionary-local (a fresh append-only dict cannot adopt the
	// donor's numbering) — what matters is that every migrated key is now
	// interned on the recipient.
	for _, k := range keys {
		if _, ok := recDict.Lookup(k); !ok {
			t.Fatalf("key %q not interned on recipient", k)
		}
	}
}

func TestApplyRejectsCorruptImages(t *testing.T) {
	ag := newAgg(t, window.SumInverse)
	if err := ag.AddBatch(tuple.Second, map[string]float64{}); err != nil {
		t.Fatal(err)
	}
	dict := intern.NewDict(0)
	for _, img := range []*Image{
		{Slot: 1, Queries: []QueryImage{{Query: 5}}},  // query out of range
		{Slot: 1, Queries: []QueryImage{{Query: -1}}}, // negative query
		{Slot: 1, Dict: []DictSlot{{ID: 0, Key: "k"}},
			Queries: []QueryImage{{Query: 0, Batches: []BatchKV{{End: tuple.Second, Entries: []KV{{Dict: 3, Val: 1}}}}}}}, // dict ref out of range
	} {
		if err := Apply(img, []*window.Aggregator{ag}, dict); err == nil {
			t.Fatalf("Apply accepted corrupt image %+v", img)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	img := &Image{
		Slot: 5, Epoch: 2, From: 1, To: 2,
		Dict: []DictSlot{{ID: 1, Key: "alpha"}, {ID: 2, Key: "beta"}},
		Queries: []QueryImage{{Query: 0, Batches: []BatchKV{
			{End: tuple.Second, Entries: []KV{{Dict: 0, Val: 1.5}, {Dict: 1, Val: -2}}},
		}}},
	}
	enc := img.Encode()
	for i := 0; i < len(enc); i++ {
		if _, err := Decode(enc[:i]); err == nil {
			t.Fatalf("Decode accepted truncation at %d/%d bytes", i, len(enc))
		}
	}
	if _, err := Decode(append(append([]byte{}, enc...), 0)); err == nil {
		t.Fatalf("Decode accepted trailing bytes")
	}
	bad := append([]byte{}, enc...)
	bad[0] = 99
	if _, err := Decode(bad); err == nil {
		t.Fatalf("Decode accepted unknown version")
	}
}

// FuzzImage throws mutated encodings at Decode: it must never panic, and
// everything it accepts must re-encode canonically.
func FuzzImage(f *testing.F) {
	img := &Image{
		Slot: 5, Epoch: 2, From: 1, To: 2,
		Dict: []DictSlot{{ID: 1, Key: "alpha"}},
		Queries: []QueryImage{{Query: 0, Batches: []BatchKV{
			{End: tuple.Second, Entries: []KV{{Dict: 0, Val: 1.5}}},
		}}},
	}
	f.Add(img.Encode())
	f.Add([]byte{imageVersion})
	f.Fuzz(func(t *testing.T, b []byte) {
		dec, err := Decode(b)
		if err != nil {
			return
		}
		re := dec.Encode()
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted non-canonical encoding:\n  in  %x\n  out %x", b, re)
		}
	})
}
