// Package migrate implements key-range state migration for live
// elasticity: when the executor set grows or shrinks, the window state
// and intern-dictionary slots of the affected keys move between owners
// at a batch boundary, bit-identically.
//
// Keys hash onto a fixed ring of virtual slots (NumSlots); an owner set
// of n executors owns slot s ↔ s mod n == owner. Rescaling from m to n
// owners therefore moves only the slots whose residue changes — the
// cheap, incremental repartitioning shape the elasticity literature
// calls for — and Plan enumerates exactly those handoffs.
//
// A slot's state travels as an Image: the per-query window contributions
// of the slot's keys (aligned with window.BatchState) plus the intern
// slots (id, key) those keys occupy, serialized with the same
// length-checked varint discipline as internal/wire (this package cannot
// import wire — wire imports engine — so it carries its own primitives).
// Extract removes the state from the donor's aggregators, Apply
// reinserts it on the recipient's; the engine round-trips every image
// through Encode/Decode even for in-process handoffs, so the codec path
// is always the one exercised.
package migrate

import (
	"fmt"
	"slices"

	"prompt/internal/hashutil"
	"prompt/internal/intern"
	"prompt/internal/tuple"
	"prompt/internal/window"
)

// NumSlots is the fixed virtual-slot count keys hash onto. It bounds
// migration granularity: a rescale moves state in slot units, never
// single keys, and ownership is a pure function of slot and owner count.
const NumSlots = 64

// SlotOf maps a key to its virtual slot.
func SlotOf(key string) int {
	return int(hashutil.Hash(key) % NumSlots)
}

// Owner returns the executor owning slot s among n owners (n >= 1).
func Owner(slot, owners int) int {
	if owners < 1 {
		owners = 1
	}
	return slot % owners
}

// Handoff is one slot changing owner in a rescale.
type Handoff struct {
	Slot int
	From int
	To   int
}

// Plan enumerates the handoffs of rescaling from `from` owners to `to`
// owners, in slot order. Slots whose owner is unchanged do not appear;
// from == to yields an empty plan.
func Plan(from, to int) []Handoff {
	if from < 1 {
		from = 1
	}
	if to < 1 {
		to = 1
	}
	var plan []Handoff
	for s := 0; s < NumSlots; s++ {
		a, b := Owner(s, from), Owner(s, to)
		if a != b {
			plan = append(plan, Handoff{Slot: s, From: a, To: b})
		}
	}
	return plan
}

// DictSlot is one intern-dictionary entry traveling with a slot's keys.
type DictSlot struct {
	ID  uint32
	Key string
}

// KV is one key's contribution inside a retained batch, referencing the
// key by its index in the image's Dict table.
type KV struct {
	Dict int
	Val  float64
}

// BatchKV is the extracted contributions of one retained window batch.
type BatchKV struct {
	End     tuple.Time
	Entries []KV
}

// QueryImage is one query's extracted window state: one BatchKV per
// retained batch, positionally aligned with the aggregator's batch list.
type QueryImage struct {
	Query   int
	Batches []BatchKV
}

// Image is the serialized state of one slot handoff: the epoch (batch
// index the handoff commits at), the moving intern slots, and each
// windowed query's per-batch contributions for the slot's keys.
type Image struct {
	Slot    int
	Epoch   int
	From    int
	To      int
	Dict    []DictSlot
	Queries []QueryImage
}

// Keys returns how many distinct keys the image carries.
func (img *Image) Keys() int { return len(img.Dict) }

// Extract removes the slot's keys from every windowed aggregator and
// packs their state — window contributions plus intern slots — into an
// image. Aggregator entries may be nil (windowless queries). The dict is
// not mutated (intern dictionaries are append-only); the image records
// the (id, key) pairs so the recipient can verify or extend its mirror.
func Extract(slot, epoch, from, to int, aggs []*window.Aggregator, dict *intern.Dict) *Image {
	img := &Image{Slot: slot, Epoch: epoch, From: from, To: to}
	index := make(map[string]int)
	ref := func(key string) int {
		if i, ok := index[key]; ok {
			return i
		}
		i := len(img.Dict)
		id, ok := dict.Lookup(key)
		if !ok {
			// A window key the engine never interned cannot occur — every
			// key enters the windows through the interning accumulator —
			// but a zero ID keeps the image well-formed if it somehow does.
			id = 0
		}
		img.Dict = append(img.Dict, DictSlot{ID: id, Key: key})
		index[key] = i
		return i
	}
	for qi, ag := range aggs {
		if ag == nil {
			continue
		}
		states := ag.ExtractKeys(func(k string) bool { return SlotOf(k) == slot })
		q := QueryImage{Query: qi, Batches: make([]BatchKV, len(states))}
		for bi, s := range states {
			bk := BatchKV{End: s.End}
			// Deterministic entry order: dict-reference order is first-seen
			// per image, so iterate keys sorted for stable encodings.
			for _, k := range sortedKeys(s.Result) {
				bk.Entries = append(bk.Entries, KV{Dict: ref(k), Val: s.Result[k]})
			}
			q.Batches[bi] = bk
		}
		img.Queries = append(img.Queries, q)
	}
	return img
}

// Apply reinserts an image's state into the recipient's aggregators,
// verifying the image's intern slots against the dictionary (interning
// any key the recipient has not seen — a fresh owner's dictionary may
// trail the donor's).
func Apply(img *Image, aggs []*window.Aggregator, dict *intern.Dict) error {
	for _, d := range img.Dict {
		if have, ok := dict.Lookup(d.Key); ok {
			if have != d.ID {
				return fmt.Errorf("migrate: slot %d: key %q interned as %d here, image says %d",
					img.Slot, d.Key, have, d.ID)
			}
			continue
		}
		dict.Intern(d.Key)
	}
	for _, q := range img.Queries {
		if q.Query < 0 || q.Query >= len(aggs) {
			return fmt.Errorf("migrate: slot %d: query index %d out of range [0,%d)", img.Slot, q.Query, len(aggs))
		}
		ag := aggs[q.Query]
		if ag == nil {
			return fmt.Errorf("migrate: slot %d: query %d has no window here but the image carries one", img.Slot, q.Query)
		}
		states := make([]window.BatchState, len(q.Batches))
		for bi, b := range q.Batches {
			m := make(map[string]float64, len(b.Entries))
			for _, e := range b.Entries {
				if e.Dict < 0 || e.Dict >= len(img.Dict) {
					return fmt.Errorf("migrate: slot %d: dict reference %d out of range [0,%d)", img.Slot, e.Dict, len(img.Dict))
				}
				m[img.Dict[e.Dict].Key] = e.Val
			}
			states[bi] = window.BatchState{End: b.End, Result: m}
		}
		if err := ag.ApplyKeys(states); err != nil {
			return fmt.Errorf("migrate: slot %d query %d: %w", img.Slot, q.Query, err)
		}
	}
	return nil
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}
