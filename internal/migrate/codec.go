package migrate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"prompt/internal/tuple"
)

// imageVersion tags the image encoding so a future layout change fails
// cleanly instead of misparsing (the same asymmetric-version tolerance
// internal/wire applies to frames).
const imageVersion = 1

// ErrImage reports a malformed or truncated migration image.
var ErrImage = errors.New("migrate: malformed image")

// Encode serializes the image: varint-coded integers (zigzag where the
// domain is signed), length-prefixed strings, IEEE-754 bits for floats,
// every length validated against the remaining payload on decode.
func (img *Image) Encode() []byte {
	b := []byte{imageVersion}
	b = binary.AppendVarint(b, int64(img.Slot))
	b = binary.AppendVarint(b, int64(img.Epoch))
	b = binary.AppendVarint(b, int64(img.From))
	b = binary.AppendVarint(b, int64(img.To))
	b = binary.AppendUvarint(b, uint64(len(img.Dict)))
	for _, d := range img.Dict {
		b = binary.AppendUvarint(b, uint64(d.ID))
		b = binary.AppendUvarint(b, uint64(len(d.Key)))
		b = append(b, d.Key...)
	}
	b = binary.AppendUvarint(b, uint64(len(img.Queries)))
	for _, q := range img.Queries {
		b = binary.AppendVarint(b, int64(q.Query))
		b = binary.AppendUvarint(b, uint64(len(q.Batches)))
		for _, bk := range q.Batches {
			b = binary.AppendVarint(b, int64(bk.End))
			b = binary.AppendUvarint(b, uint64(len(bk.Entries)))
			for _, e := range bk.Entries {
				b = binary.AppendUvarint(b, uint64(e.Dict))
				b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Val))
			}
		}
	}
	return b
}

// imgReader is a bounds-checked cursor over an encoded image.
type imgReader struct {
	b   []byte
	off int
}

func (r *imgReader) remaining() int { return len(r.b) - r.off }

func (r *imgReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrImage
	}
	r.off += n
	return v, nil
}

func (r *imgReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrImage
	}
	r.off += n
	return v, nil
}

func (r *imgReader) intv() (int, error) {
	v, err := r.varint()
	if err != nil {
		return 0, err
	}
	if int64(int(v)) != v {
		return 0, fmt.Errorf("%w: varint %d overflows int", ErrImage, v)
	}
	return int(v), nil
}

// count reads an element count whose encoding occupies at least minBytes
// bytes per element, rejecting counts the payload cannot hold.
func (r *imgReader) count(minBytes int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(r.remaining()/minBytes) {
		return 0, fmt.Errorf("%w: count %d exceeds payload", ErrImage, v)
	}
	return int(v), nil
}

func (r *imgReader) float() (float64, error) {
	if r.remaining() < 8 {
		return 0, ErrImage
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return math.Float64frombits(v), nil
}

func (r *imgReader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", ErrImage
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// Decode parses an encoded image, failing cleanly on truncation, bad
// versions, and length bombs.
func Decode(b []byte) (*Image, error) {
	if len(b) < 1 {
		return nil, ErrImage
	}
	if b[0] != imageVersion {
		return nil, fmt.Errorf("%w: version %d, speak %d", ErrImage, b[0], imageVersion)
	}
	r := &imgReader{b: b, off: 1}
	img := &Image{}
	var err error
	if img.Slot, err = r.intv(); err != nil {
		return nil, err
	}
	if img.Epoch, err = r.intv(); err != nil {
		return nil, err
	}
	if img.From, err = r.intv(); err != nil {
		return nil, err
	}
	if img.To, err = r.intv(); err != nil {
		return nil, err
	}
	nd, err := r.count(2)
	if err != nil {
		return nil, err
	}
	img.Dict = make([]DictSlot, nd)
	for i := range img.Dict {
		id, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if id > math.MaxUint32 {
			return nil, fmt.Errorf("%w: dict id %d overflows uint32", ErrImage, id)
		}
		key, err := r.string()
		if err != nil {
			return nil, err
		}
		img.Dict[i] = DictSlot{ID: uint32(id), Key: key}
	}
	nq, err := r.count(2)
	if err != nil {
		return nil, err
	}
	img.Queries = make([]QueryImage, nq)
	for qi := range img.Queries {
		q := &img.Queries[qi]
		if q.Query, err = r.intv(); err != nil {
			return nil, err
		}
		nb, err := r.count(2)
		if err != nil {
			return nil, err
		}
		q.Batches = make([]BatchKV, nb)
		for bi := range q.Batches {
			bk := &q.Batches[bi]
			end, err := r.varint()
			if err != nil {
				return nil, err
			}
			bk.End = tuple.Time(end)
			ne, err := r.count(9)
			if err != nil {
				return nil, err
			}
			bk.Entries = make([]KV, ne)
			for ei := range bk.Entries {
				d, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if d >= uint64(len(img.Dict)) {
					return nil, fmt.Errorf("%w: dict reference %d out of range [0,%d)", ErrImage, d, len(img.Dict))
				}
				v, err := r.float()
				if err != nil {
					return nil, err
				}
				bk.Entries[ei] = KV{Dict: int(d), Val: v}
			}
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrImage, r.remaining())
	}
	return img, nil
}

// Digest is the FNV-1a hash of an encoded image — the fingerprint a
// migration recipient acknowledges so the sender can verify the state
// arrived intact.
func Digest(encoded []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(encoded); i++ {
		h ^= uint64(encoded[i])
		h *= prime64
	}
	return h
}
