package window

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"prompt/internal/tuple"
)

func TestSpecValidate(t *testing.T) {
	if err := Sliding(30*tuple.Second, tuple.Second).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (Spec{Length: 0, Slide: 1}).Validate(); err == nil {
		t.Error("zero length accepted")
	}
	if err := (Spec{Length: 5, Slide: 10}).Validate(); err == nil {
		t.Error("slide > length accepted")
	}
	tw := Tumbling(10 * tuple.Second)
	if tw.Slide != tw.Length {
		t.Error("Tumbling slide != length")
	}
}

func TestAggregatorRequiresReduce(t *testing.T) {
	if _, err := NewAggregator(Tumbling(tuple.Second), nil, nil); err == nil {
		t.Error("nil reduce accepted")
	}
}

func TestAggregatorSlidingSum(t *testing.T) {
	ag, err := NewAggregator(Sliding(3*tuple.Second, tuple.Second), Sum, SumInverse)
	if err != nil {
		t.Fatal(err)
	}
	// Batches end at 1s, 2s, 3s, 4s with key "a" values 1, 2, 3, 4.
	for i := 1; i <= 4; i++ {
		err := ag.AddBatch(tuple.Time(i)*tuple.Second, map[string]float64{"a": float64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Window [1s, 4s]: batch ending at 1s expired (1s <= 4s-3s), so 2+3+4.
	if v, ok := ag.Value("a"); !ok || v != 9 {
		t.Errorf("a = %v,%v, want 9", v, ok)
	}
	if ag.Batches() != 3 {
		t.Errorf("window holds %d batches, want 3", ag.Batches())
	}
}

func TestAggregatorEvictsKeysEntirely(t *testing.T) {
	ag, err := NewAggregator(Sliding(2*tuple.Second, tuple.Second), Sum, SumInverse)
	if err != nil {
		t.Fatal(err)
	}
	must := func(e error) {
		if e != nil {
			t.Fatal(e)
		}
	}
	must(ag.AddBatch(1*tuple.Second, map[string]float64{"gone": 7}))
	must(ag.AddBatch(2*tuple.Second, map[string]float64{"stay": 1}))
	must(ag.AddBatch(3*tuple.Second, map[string]float64{"stay": 2}))
	if _, ok := ag.Value("gone"); ok {
		t.Error("expired key still present")
	}
	snap := ag.Snapshot()
	if len(snap) != 1 || snap["stay"] != 3 {
		t.Errorf("snapshot = %v, want {stay:3}", snap)
	}
}

func TestAggregatorRejectsOutOfOrder(t *testing.T) {
	ag, _ := NewAggregator(Tumbling(tuple.Second), Sum, SumInverse)
	if err := ag.AddBatch(2*tuple.Second, nil); err != nil {
		t.Fatal(err)
	}
	if err := ag.AddBatch(1*tuple.Second, nil); err == nil {
		t.Error("out-of-order batch accepted")
	}
}

func TestIncrementalMatchesRecompute(t *testing.T) {
	// Property: after any sequence of batches, the inverse-maintained
	// state equals recomputation over the retained batches.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ag, err := NewAggregator(Sliding(5*tuple.Second, tuple.Second), Sum, SumInverse)
		if err != nil {
			return false
		}
		for i := 1; i <= 30; i++ {
			batch := map[string]float64{}
			for j := 0; j < rng.Intn(8); j++ {
				batch[fmt.Sprintf("k%d", rng.Intn(10))] = float64(rng.Intn(100))
			}
			if err := ag.AddBatch(tuple.Time(i)*tuple.Second, batch); err != nil {
				return false
			}
			inc := ag.Snapshot()
			ref := ag.Recompute()
			if len(inc) != len(ref) {
				return false
			}
			for k, v := range ref {
				if math.Abs(inc[k]-v) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNoInverseFallsBackToRecompute(t *testing.T) {
	ag, err := NewAggregator(Sliding(2*tuple.Second, tuple.Second), Max, nil)
	if err != nil {
		t.Fatal(err)
	}
	must := func(e error) {
		if e != nil {
			t.Fatal(e)
		}
	}
	must(ag.AddBatch(1*tuple.Second, map[string]float64{"a": 100}))
	must(ag.AddBatch(2*tuple.Second, map[string]float64{"a": 5}))
	if v, _ := ag.Value("a"); v != 100 {
		t.Fatalf("max before eviction = %v, want 100", v)
	}
	// The 100 expires; max must drop to the surviving batches.
	must(ag.AddBatch(3*tuple.Second, map[string]float64{"a": 7}))
	if v, _ := ag.Value("a"); v != 7 {
		t.Errorf("max after eviction = %v, want 7", v)
	}
}

func TestCallerMapReuseIsSafe(t *testing.T) {
	ag, _ := NewAggregator(Sliding(10*tuple.Second, tuple.Second), Sum, SumInverse)
	m := map[string]float64{"a": 1}
	if err := ag.AddBatch(tuple.Second, m); err != nil {
		t.Fatal(err)
	}
	m["a"] = 999 // caller mutates its map after handing it over
	if err := ag.AddBatch(2*tuple.Second, map[string]float64{"a": 2}); err != nil {
		t.Fatal(err)
	}
	ref := ag.Recompute()
	if ref["a"] != 3 {
		t.Errorf("aggregator shared caller's map: recompute = %v, want 3", ref["a"])
	}
}

func TestTopK(t *testing.T) {
	ag, _ := NewAggregator(Tumbling(10*tuple.Second), Sum, SumInverse)
	err := ag.AddBatch(tuple.Second, map[string]float64{"a": 5, "b": 9, "c": 9, "d": 1})
	if err != nil {
		t.Fatal(err)
	}
	top := ag.TopK(3)
	want := []Entry{{"b", 9}, {"c", 9}, {"a", 5}}
	if len(top) != 3 {
		t.Fatalf("TopK returned %d entries", len(top))
	}
	for i := range want {
		if top[i] != want[i] {
			t.Errorf("TopK[%d] = %+v, want %+v", i, top[i], want[i])
		}
	}
	if got := ag.TopK(100); len(got) != 4 {
		t.Errorf("TopK(100) returned %d entries, want all 4", len(got))
	}
}

// TestNoInverseEvictSteadyStateAllocs pins the steady-state allocation
// count of the no-inverse evict path. Without an inverse, every eviction
// recomputes the window state from the retained batches; rebuilding the
// state/contrib maps from scratch each time allocated fresh (unsized) maps
// per batch and regrew them key by key. The maps must instead be cleared
// and refilled in place, so the only steady-state allocation left in
// AddBatch is the defensive copy of the caller's result map.
func TestNoInverseEvictSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement skipped in -short mode")
	}
	const (
		keys = 4096
		warm = 16
		runs = 16
		// Post-fix the path measures ~18 allocations per batch (the
		// defensive copy of the caller's 4096-key result map); the
		// pre-fix map rebuild measured ~114. The ceiling sits between
		// with margin on both sides.
		ceiling = 40
	)
	ag, err := NewAggregator(Sliding(4*tuple.Second, tuple.Second), Max, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One pre-built result map per batch slot: the measured loop must not
	// allocate anything of its own besides AddBatch's internals.
	batch := make(map[string]float64, keys)
	for i := 0; i < keys; i++ {
		batch[fmt.Sprintf("k%04d", i)] = float64(i % 97)
	}
	end := tuple.Time(0)
	step := func() {
		end += tuple.Second
		if err := ag.AddBatch(end, batch); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < warm; i++ {
		step()
	}
	avg := testing.AllocsPerRun(runs, step)
	t.Logf("no-inverse AddBatch allocations per batch: %.0f (ceiling %d)", avg, ceiling)
	if avg > ceiling {
		t.Errorf("no-inverse evict allocates %.0f per batch, ceiling %d", avg, ceiling)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	ag, _ := NewAggregator(Tumbling(10*tuple.Second), Sum, SumInverse)
	if err := ag.AddBatch(tuple.Second, map[string]float64{"a": 1}); err != nil {
		t.Fatal(err)
	}
	snap := ag.Snapshot()
	snap["a"] = 42
	if v, _ := ag.Value("a"); v != 1 {
		t.Error("Snapshot exposed internal state")
	}
}
