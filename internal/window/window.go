// Package window implements windowed aggregation over micro-batch results
// (Figure 3 of the paper): the query answer is the aggregate of all batch
// outputs inside the window's time predicate, maintained incrementally.
// Batches that exit the window are reflected onto the answer with an
// inverse Reduce function, avoiding re-evaluation; when no inverse exists,
// the aggregator falls back to recomputing from the retained batch outputs.
package window

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"

	"prompt/internal/tuple"
)

// ReduceFn combines two partial aggregate values for the same key.
type ReduceFn func(a, b float64) float64

// Sum is the additive reduce used by the counting and total queries.
func Sum(a, b float64) float64 { return a + b }

// SumInverse removes b from a, the inverse of Sum.
func SumInverse(a, b float64) float64 { return a - b }

// Max keeps the larger value. It has no inverse; windows using it fall
// back to recompute-on-evict.
func Max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Spec defines a sliding window. Slide == Length gives a tumbling window.
type Spec struct {
	Length tuple.Time
	Slide  tuple.Time
}

// Validate rejects degenerate windows.
func (s Spec) Validate() error {
	if s.Length <= 0 {
		return fmt.Errorf("window: length must be positive, got %v", s.Length)
	}
	if s.Slide <= 0 {
		return fmt.Errorf("window: slide must be positive, got %v", s.Slide)
	}
	if s.Slide > s.Length {
		return fmt.Errorf("window: slide %v exceeds length %v", s.Slide, s.Length)
	}
	return nil
}

// Tumbling returns a window whose slide equals its length.
func Tumbling(length tuple.Time) Spec { return Spec{Length: length, Slide: length} }

// Sliding returns a sliding window spec.
func Sliding(length, slide tuple.Time) Spec { return Spec{Length: length, Slide: slide} }

// batchOutput is one batch's per-key partial aggregate, kept while the
// batch is inside the window (it doubles as the replicated batch state the
// paper's consistency section describes).
type batchOutput struct {
	end    tuple.Time
	result map[string]float64
}

// Aggregator maintains the per-key window state across batch outputs.
// It is safe for concurrent use: merges (AddBatch, Restore) take an
// exclusive lock while reads (Snapshot, Value, TopK, State, Recompute)
// share one, so the parallel runtime can merge different queries' windows
// on worker goroutines while observers read current answers. Batch ends
// must still be non-decreasing, so each aggregator has one logical writer
// per batch — the engine's driver barrier provides that ordering.
type Aggregator struct {
	mu      sync.RWMutex
	spec    Spec
	reduce  ReduceFn
	inverse ReduceFn // nil => recompute on evict
	batches []batchOutput
	state   map[string]float64
	contrib map[string]int // batches currently contributing to each key
}

// NewAggregator returns a window aggregator. inverse may be nil for
// non-invertible reduce functions.
func NewAggregator(spec Spec, reduce, inverse ReduceFn) (*Aggregator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if reduce == nil {
		return nil, fmt.Errorf("window: reduce function is required")
	}
	return &Aggregator{
		spec:    spec,
		reduce:  reduce,
		inverse: inverse,
		state:   make(map[string]float64),
		contrib: make(map[string]int),
	}, nil
}

// Spec returns the window specification.
func (ag *Aggregator) Spec() Spec { return ag.spec }

// Batches returns the number of batch outputs currently inside the window.
func (ag *Aggregator) Batches() int {
	ag.mu.RLock()
	defer ag.mu.RUnlock()
	return len(ag.batches)
}

// AddBatch merges one batch output (keyed partial aggregates) ending at the
// given time into the window state and evicts batches that have fallen out
// of [end-Length, end). Batch ends must be non-decreasing.
func (ag *Aggregator) AddBatch(end tuple.Time, result map[string]float64) error {
	ag.mu.Lock()
	defer ag.mu.Unlock()
	return ag.addBatchLocked(end, result)
}

// addBatchLocked is AddBatch's body; the caller holds the write lock.
func (ag *Aggregator) addBatchLocked(end tuple.Time, result map[string]float64) error {
	if n := len(ag.batches); n > 0 && end < ag.batches[n-1].end {
		return fmt.Errorf("window: batch end %v precedes previous %v", end, ag.batches[n-1].end)
	}
	// Retain a copy: the caller may reuse its map.
	cp := make(map[string]float64, len(result))
	for k, v := range result {
		cp[k] = v
		if _, ok := ag.state[k]; ok {
			ag.state[k] = ag.reduce(ag.state[k], v)
		} else {
			ag.state[k] = v
		}
		ag.contrib[k]++
	}
	ag.batches = append(ag.batches, batchOutput{end: end, result: cp})
	ag.evict(end)
	return nil
}

// evict removes batches whose end time is at or before now-Length.
func (ag *Aggregator) evict(now tuple.Time) {
	cutoff := now - ag.spec.Length
	i := 0
	for i < len(ag.batches) && ag.batches[i].end <= cutoff {
		i++
	}
	if i == 0 {
		return
	}
	expired := ag.batches[:i]
	ag.batches = ag.batches[i:]
	if ag.inverse != nil {
		for _, b := range expired {
			for k, v := range b.result {
				ag.state[k] = ag.inverse(ag.state[k], v)
				ag.contrib[k]--
				if ag.contrib[k] == 0 {
					delete(ag.state, k)
					delete(ag.contrib, k)
				}
			}
		}
		return
	}
	// No inverse: recompute from the retained batches. The maps are
	// cleared and refilled in place — steady-state evictions must not
	// allocate (the hot-path discipline of DESIGN.md §7), and a window's
	// key universe is stable enough that the retained capacity is the
	// right size for the next eviction too.
	clear(ag.state)
	clear(ag.contrib)
	for _, b := range ag.batches {
		for k, v := range b.result {
			if _, ok := ag.state[k]; ok {
				ag.state[k] = ag.reduce(ag.state[k], v)
			} else {
				ag.state[k] = v
			}
			ag.contrib[k]++
		}
	}
}

// Snapshot returns a copy of the current window answer.
func (ag *Aggregator) Snapshot() map[string]float64 {
	ag.mu.RLock()
	defer ag.mu.RUnlock()
	out := make(map[string]float64, len(ag.state))
	for k, v := range ag.state {
		out[k] = v
	}
	return out
}

// Value returns the current aggregate for one key.
func (ag *Aggregator) Value(key string) (float64, bool) {
	ag.mu.RLock()
	defer ag.mu.RUnlock()
	v, ok := ag.state[key]
	return v, ok
}

// Recompute returns the window answer computed from scratch over the
// retained batch outputs. Tests use it to verify that incremental
// maintenance with the inverse function matches full recomputation.
func (ag *Aggregator) Recompute() map[string]float64 {
	ag.mu.RLock()
	defer ag.mu.RUnlock()
	out := make(map[string]float64)
	for _, b := range ag.batches {
		for k, v := range b.result {
			if cur, ok := out[k]; ok {
				out[k] = ag.reduce(cur, v)
			} else {
				out[k] = v
			}
		}
	}
	return out
}

// BatchState is one retained batch output, exported for checkpointing.
type BatchState struct {
	End    tuple.Time
	Result map[string]float64
}

// State returns the retained batch outputs in order — everything needed
// to reconstruct the aggregator after a restart.
func (ag *Aggregator) State() []BatchState {
	ag.mu.RLock()
	defer ag.mu.RUnlock()
	out := make([]BatchState, len(ag.batches))
	for i, b := range ag.batches {
		cp := make(map[string]float64, len(b.result))
		for k, v := range b.result {
			cp[k] = v
		}
		out[i] = BatchState{End: b.end, Result: cp}
	}
	return out
}

// Restore replaces the aggregator's contents with the checkpointed batch
// outputs, replaying them through the normal add/evict path so the
// incremental state is rebuilt consistently.
func (ag *Aggregator) Restore(states []BatchState) error {
	ag.mu.Lock()
	defer ag.mu.Unlock()
	ag.batches = nil
	ag.state = make(map[string]float64)
	ag.contrib = make(map[string]int)
	for _, s := range states {
		if err := ag.addBatchLocked(s.End, s.Result); err != nil {
			return fmt.Errorf("window: restoring batch ending %v: %w", s.End, err)
		}
	}
	return nil
}

// ExtractKeys removes every key matched by the predicate from the
// retained batch outputs and from the incremental state, returning the
// removed per-batch contributions in batch order (aligned with State's
// shape: one BatchState per retained batch, carrying only the extracted
// keys; batches with no matching key appear with an empty map so the
// extraction is positionally complete). It is the donor half of a
// key-range state migration: ApplyKeys on the same batch list rebuilds
// exactly the state this call removed.
func (ag *Aggregator) ExtractKeys(match func(string) bool) []BatchState {
	ag.mu.Lock()
	defer ag.mu.Unlock()
	out := make([]BatchState, len(ag.batches))
	for i := range ag.batches {
		b := &ag.batches[i]
		taken := make(map[string]float64)
		for k, v := range b.result {
			if match(k) {
				taken[k] = v
			}
		}
		for k := range taken {
			delete(b.result, k)
		}
		out[i] = BatchState{End: b.end, Result: taken}
	}
	for k := range ag.state {
		if match(k) {
			delete(ag.state, k)
			delete(ag.contrib, k)
		}
	}
	return out
}

// ApplyKeys reinserts per-key contributions previously removed by
// ExtractKeys. The states must align positionally with the currently
// retained batches (same length, same End times) — migration extracts
// and applies within one batch boundary, so the batch list cannot have
// moved between the two halves. Reinserted keys must be absent; the
// incremental state for them is rebuilt by folding the retained batches
// in order, exactly as the recompute-on-evict path does, so integral
// aggregates land bit-identical to the never-extracted run.
func (ag *Aggregator) ApplyKeys(states []BatchState) error {
	ag.mu.Lock()
	defer ag.mu.Unlock()
	if len(states) != len(ag.batches) {
		return fmt.Errorf("window: applying %d batch states onto %d retained batches", len(states), len(ag.batches))
	}
	keys := make(map[string]bool)
	for i, s := range states {
		b := &ag.batches[i]
		if s.End != b.end {
			return fmt.Errorf("window: batch %d ends at %v, incoming state says %v", i, b.end, s.End)
		}
		for k, v := range s.Result {
			if _, ok := b.result[k]; ok {
				return fmt.Errorf("window: key %q already present in batch ending %v", k, b.end)
			}
			b.result[k] = v
			keys[k] = true
		}
	}
	// Rebuild the incremental state of the reinserted keys from the
	// retained batches in order — the same fold Recompute and the
	// no-inverse evict path perform.
	for k := range keys {
		delete(ag.state, k)
		delete(ag.contrib, k)
	}
	for _, b := range ag.batches {
		for k, v := range b.result {
			if !keys[k] {
				continue
			}
			if cur, ok := ag.state[k]; ok {
				ag.state[k] = ag.reduce(cur, v)
			} else {
				ag.state[k] = v
			}
			ag.contrib[k]++
		}
	}
	return nil
}

// Entry is one (key, value) pair of a window answer.
type Entry struct {
	Key string
	Val float64
}

// TopK returns the k largest entries of the current window answer, ordered
// by value descending with key ascending as tie-break (the TopKCount
// workload of the evaluation).
func (ag *Aggregator) TopK(k int) []Entry {
	ag.mu.RLock()
	defer ag.mu.RUnlock()
	entries := make([]Entry, 0, len(ag.state))
	for key, v := range ag.state {
		entries = append(entries, Entry{Key: key, Val: v})
	}
	slices.SortFunc(entries, func(a, b Entry) int {
		if c := compareValDesc(a.Val, b.Val); c != 0 {
			return c
		}
		return strings.Compare(a.Key, b.Key)
	})
	if k < len(entries) {
		entries = entries[:k]
	}
	return entries
}

// compareValDesc orders window values descending under a total order:
// NaN sorts after every number and equal to other NaNs (letting the key
// tie-break apply), so a reduce that ever emits NaN cannot make the
// ranking depend on map iteration order. A bare != / cmp.Compare pair is
// not total here — NaN != NaN while cmp.Compare(NaN, NaN) == 0, which
// skips the tie-break and leaves NaN entries in arrival order.
func compareValDesc(a, b float64) int {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return 1
	case bn:
		return -1
	}
	return cmp.Compare(b, a)
}
