package window

import (
	"math"
	"testing"

	"prompt/internal/tuple"
)

// TestTopKTotalOrderUnderNaN pins TopK's ordering when the window answer
// contains NaN values: NaN entries sort after every number, and ties —
// including NaN/NaN ties — break on the key, so the ranking stays
// deterministic across map iteration orders. The loop re-inserts the keys
// through fresh aggregators so each TopK sees a different map iteration
// order; before the total comparator, the two NaN keys came out in
// whichever order the map happened to yield them.
func TestTopKTotalOrderUnderNaN(t *testing.T) {
	nan := math.NaN()
	wantKeys := []string{"x", "y", "a", "b"}
	for i := 0; i < 100; i++ {
		ag, err := NewAggregator(Tumbling(tuple.Second), Sum, SumInverse)
		if err != nil {
			t.Fatal(err)
		}
		err = ag.AddBatch(tuple.Second, map[string]float64{
			"a": nan, "b": nan, "x": 5, "y": 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := ag.TopK(4)
		if len(got) != 4 {
			t.Fatalf("TopK returned %d entries, want 4", len(got))
		}
		for j, e := range got {
			if e.Key != wantKeys[j] {
				t.Fatalf("iteration %d: order %v, want keys %v", i, got, wantKeys)
			}
		}
		if got[0].Val != 5 || got[1].Val != 3 || !math.IsNaN(got[2].Val) || !math.IsNaN(got[3].Val) {
			t.Fatalf("iteration %d: values %v, want [5 3 NaN NaN]", i, got)
		}
	}
}
