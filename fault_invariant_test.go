// The keystone recovery invariant of the fault-injection harness: for
// every registered partitioning scheme, a run under any seeded fault plan
// produces exactly the fault-free windowed answers — kills, stragglers,
// and output losses may change timings, never results.
package prompt_test

import (
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"prompt"

	"prompt/internal/fault"
	"prompt/internal/workload"
)

// faultedStream builds a WordCount stream for the scheme with the given
// plan (nil = fault-free) and worker count.
func faultedStream(t *testing.T, scheme prompt.Scheme, plan *prompt.FaultPlan, workers int) *prompt.Stream {
	t.Helper()
	st, err := prompt.New(prompt.Config{
		BatchInterval: time.Second,
		MapTasks:      4,
		ReduceTasks:   4,
		Cores:         4,
		Workers:       workers,
		Scheme:        scheme,
		Validate:      true,
		Faults:        plan,
	}, prompt.WordCount(5*time.Second, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// sourceBatches adapts a workload source into a BatchSource.
func sourceBatches(src *workload.Source) prompt.BatchSource {
	return func(start, end prompt.Time) ([]prompt.Tuple, error) {
		return src.Slice(start, end)
	}
}

// invariantPlans are the scripted plans of the table: one of each fault
// kind alone, plus a compound plan mixing all three.
func invariantPlans(t *testing.T) map[string]*prompt.FaultPlan {
	t.Helper()
	plans := map[string]*prompt.FaultPlan{}
	for name, script := range map[string]string{
		"kill":     "kill@1:node=0,cores=2,after=2ms",
		"straggle": "straggle@2:stage=map,factor=9;straggle@3:stage=reduce,task=1,factor=4",
		"lose":     "lose@2:fails=1",
		"compound": "seed=5;kill@1:cores=1,after=1ms;straggle@2:factor=6;lose@3:fails=2",
	} {
		p, err := prompt.ParseFaultPlan(script)
		if err != nil {
			t.Fatal(err)
		}
		plans[name] = p
	}
	// Extra randomized plans from the environment (the nightly CI job sets
	// PROMPT_FAULT_SEEDS=1,2,3,4,5).
	if env := os.Getenv("PROMPT_FAULT_SEEDS"); env != "" {
		for _, f := range strings.Split(env, ",") {
			seed, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				t.Fatalf("PROMPT_FAULT_SEEDS: %v", err)
			}
			plans["seed-"+strings.TrimSpace(f)] = fault.RandomPlan(seed, 5, 4)
		}
	}
	return plans
}

func TestFaultPlanPreservesResultsEveryScheme(t *testing.T) {
	const batches = 6
	plans := invariantPlans(t)
	for _, scheme := range prompt.Schemes() {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			t.Parallel()
			for _, workers := range []int{0, 4} {
				// The fault-free reference run for this scheme/worker pair.
				clean := faultedStream(t, scheme, nil, workers)
				cleanSrc, err := workload.Tweets(workload.ConstantRate(3000),
					workload.DatasetDefaults{Cardinality: 500, Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				cleanReps, err := clean.Run(sourceBatches(cleanSrc), batches)
				if err != nil {
					t.Fatal(err)
				}
				cleanWin := clean.Window()
				if len(cleanWin) == 0 {
					t.Fatal("reference run produced an empty window")
				}

				for name, plan := range plans {
					st := faultedStream(t, scheme, plan, workers)
					src, err := workload.Tweets(workload.ConstantRate(3000),
						workload.DatasetDefaults{Cardinality: 500, Seed: 7})
					if err != nil {
						t.Fatal(err)
					}
					reps, err := st.Run(sourceBatches(src), batches)
					if err != nil {
						t.Fatalf("workers=%d plan %s: %v", workers, name, err)
					}
					if !reflect.DeepEqual(st.Window(), cleanWin) {
						t.Errorf("workers=%d plan %s: windowed results diverged from fault-free run", workers, name)
					}
					for i := range reps {
						if reps[i].Tuples != cleanReps[i].Tuples || reps[i].Keys != cleanReps[i].Keys {
							t.Errorf("workers=%d plan %s batch %d: input statistics changed", workers, name, i)
						}
						if !reflect.DeepEqual(reps[i].BucketSizes, cleanReps[i].BucketSizes) {
							t.Errorf("workers=%d plan %s batch %d: partitioning changed under faults", workers, name, i)
						}
					}
				}
			}
		})
	}
}

// TestFaultPlanRoundTrip pins the public grammar: String re-parses to an
// equal plan and invalid scripts are rejected with ErrBadConfig.
func TestFaultPlanRoundTrip(t *testing.T) {
	p, err := prompt.ParseFaultPlan("seed=3;kill@2:cores=1,after=5ms;lose@4:fails=1")
	if err != nil {
		t.Fatal(err)
	}
	back, err := prompt.ParseFaultPlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, p) {
		t.Errorf("round-trip changed the plan: %v vs %v", back, p)
	}
	if _, err := prompt.ParseFaultPlan("explode@1"); err == nil {
		t.Error("invalid fault kind accepted")
	}
}

// TestFaultReportsSurfaceRecovery checks the typed report view carries
// the recovery info end to end through the public API.
func TestFaultReportsSurfaceRecovery(t *testing.T) {
	plan, err := prompt.ParseFaultPlan("kill@1:cores=2,after=1ms;lose@2:fails=1")
	if err != nil {
		t.Fatal(err)
	}
	st := faultedStream(t, prompt.SchemePrompt, plan, 0)
	src, err := workload.Tweets(workload.ConstantRate(3000),
		workload.DatasetDefaults{Cardinality: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reps, err := st.Run(sourceBatches(src), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reps[0].Recovery.Clean() {
		t.Errorf("batch 0 recovery info not clean: %+v", reps[0].Recovery)
	}
	if reps[1].Recovery.CoresLost != 2 || reps[1].Recovery.TaskRetries == 0 {
		t.Errorf("killed batch recovery info = %+v, want 2 cores lost with retries", reps[1].Recovery)
	}
	if reps[2].Recovery.Attempts != 2 || reps[2].Recovery.Time <= 0 {
		t.Errorf("lost batch recovery info = %+v, want 2 attempts and time > 0", reps[2].Recovery)
	}
	if st.CoresLost() != 2 {
		t.Errorf("CoresLost() = %d, want 2", st.CoresLost())
	}
	if err := st.SetCores(4); err != nil {
		t.Fatal(err)
	}
	if st.CoresLost() != 0 {
		t.Errorf("CoresLost() = %d after SetCores, want 0", st.CoresLost())
	}
	sum := prompt.Summarize(reps)
	if sum.TaskRetries == 0 || sum.Recoveries != 1 || sum.RecoveryTime != reps[2].Recovery.Time {
		t.Errorf("summary fault roll-up wrong: %+v", sum)
	}
	for _, r := range reps {
		if r.Scheme != "prompt" {
			t.Fatalf("report scheme %q, want %q", r.Scheme, "prompt")
		}
	}
}

func TestFaultOptionsValidateEagerly(t *testing.T) {
	if _, err := prompt.NewWithOptions(prompt.WordCount(time.Minute, time.Second),
		prompt.WithFaultScript("kill@-1:cores=2")); err == nil {
		t.Error("negative batch index accepted")
	}
	if _, err := prompt.NewWithOptions(prompt.WordCount(time.Minute, time.Second),
		prompt.WithRetryPolicy(prompt.RetryPolicy{MaxAttempts: -3})); err == nil {
		t.Error("negative MaxAttempts accepted")
	}
	st, err := prompt.NewWithOptions(prompt.WordCount(time.Minute, time.Second),
		prompt.WithFaultScript("straggle@1:factor=4"),
		prompt.WithRetryPolicy(prompt.RetryPolicy{MaxAttempts: 2, SpeculativeAfter: prompt.Time(1000)}))
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("stream not built")
	}
}
