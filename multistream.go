package prompt

import (
	"bytes"
	"context"
	"fmt"

	"prompt/internal/core"
	"prompt/internal/dist"
	"prompt/internal/engine"
)

// MultiStream runs several queries over one input stream. The batching
// phase — frequency-aware statistics and partitioning — executes once per
// batch and all queries share the resulting data blocks; each query then
// runs as its own Map-Reduce job. Reports describe the primary query
// (index 0) in their per-stage details, while ProcessingTime and stability
// account for all jobs.
type MultiStream struct {
	eng    *engine.Engine
	scheme core.Scheme
	names  []string
	coord  *dist.Coordinator // non-nil when a Topology is configured
}

// NewMulti builds a multi-query stream. At least one query is required.
// Configuration failures wrap ErrBadConfig; cluster connection failures
// (cfg.Topology) wrap ErrCluster.
func NewMulti(cfg Config, queries ...Query) (*MultiStream, error) {
	ec, scheme, err := cfg.build()
	if err != nil {
		return nil, err
	}
	eng, err := engine.NewMulti(ec, queries)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	coord, err := cfg.Topology.connect(eng, queries)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(queries))
	for i, q := range queries {
		names[i] = q.Name
	}
	return &MultiStream{eng: eng, scheme: scheme, names: names, coord: coord}, nil
}

// SchemeName reports which partitioning scheme the stream runs.
func (m *MultiStream) SchemeName() string { return m.scheme.Name }

// Queries returns the query names in index order.
func (m *MultiStream) Queries() []string { return append([]string(nil), m.names...) }

// Now returns the start of the next batch interval.
func (m *MultiStream) Now() Time { return m.eng.Now() }

// BatchInterval returns the configured heartbeat.
func (m *MultiStream) BatchInterval() Time { return m.eng.Config().BatchInterval }

// ProcessBatch ingests the next batch interval's tuples and runs every
// query's job over the shared blocks.
func (m *MultiStream) ProcessBatch(tuples []Tuple) (BatchReport, error) {
	return m.ProcessBatchContext(context.Background(), tuples)
}

// ProcessBatchContext is ProcessBatch with cooperative cancellation; see
// Stream.ProcessBatchContext.
func (m *MultiStream) ProcessBatchContext(ctx context.Context, tuples []Tuple) (BatchReport, error) {
	start := m.eng.Now()
	end := start + m.eng.Config().BatchInterval
	rep, err := m.eng.StepContext(ctx, tuples, start, end)
	if err != nil {
		return BatchReport{}, err
	}
	return newBatchReport(m.scheme.Name, rep), nil
}

// Run pulls n consecutive batch intervals from the source and processes
// them; it is RunContext with context.Background().
func (m *MultiStream) Run(src BatchSource, n int) ([]BatchReport, error) {
	return m.RunContext(context.Background(), src, n)
}

// RunContext drives n batches with cooperative cancellation; see
// Stream.RunContext for the exact stop points.
func (m *MultiStream) RunContext(ctx context.Context, src BatchSource, n int) ([]BatchReport, error) {
	out := make([]BatchReport, 0, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		start := m.eng.Now()
		end := start + m.eng.Config().BatchInterval
		tuples, err := src(start, end)
		if err != nil {
			return out, err
		}
		rep, err := m.eng.StepContext(ctx, tuples, start, end)
		if err != nil {
			return out, err
		}
		out = append(out, newBatchReport(m.scheme.Name, rep))
	}
	return out, nil
}

// Result returns query i's previous batch output.
func (m *MultiStream) Result(i int) (map[string]float64, error) {
	if err := m.check(i); err != nil {
		return nil, err
	}
	return m.eng.LastResultOf(i), nil
}

// Window returns query i's current window answer (nil for windowless
// queries).
func (m *MultiStream) Window(i int) (map[string]float64, error) {
	if err := m.check(i); err != nil {
		return nil, err
	}
	agg := m.eng.WindowOf(i)
	if agg == nil {
		return nil, nil
	}
	return agg.Snapshot(), nil
}

// TopK returns the k largest entries of query i's window answer.
func (m *MultiStream) TopK(i, k int) ([]WindowEntry, error) {
	if err := m.check(i); err != nil {
		return nil, err
	}
	agg := m.eng.WindowOf(i)
	if agg == nil {
		return nil, fmt.Errorf("%w: query %d (%s)", ErrNoWindow, i, m.names[i])
	}
	return agg.TopK(k), nil
}

// HasWindow reports whether query i maintains a time window.
func (m *MultiStream) HasWindow(i int) (bool, error) {
	if err := m.check(i); err != nil {
		return false, err
	}
	return m.eng.WindowOf(i) != nil, nil
}

// SetWorkers changes the number of real worker goroutines executing the
// batch pipeline for subsequent batches (0 = single-goroutine driver,
// negative = GOMAXPROCS).
func (m *MultiStream) SetWorkers(workers int) error { return m.eng.SetWorkers(workers) }

// SetObserver installs (or, with nil, removes) a batch-lifecycle observer
// for subsequent batches; see Observer and Collector. Observers never
// influence reports.
func (m *MultiStream) SetObserver(obs Observer) { m.eng.SetObserver(obs) }

// Reports returns all batch reports since the stream started.
func (m *MultiStream) Reports() []BatchReport {
	return newBatchReports(m.scheme.Name, m.eng.Reports())
}

// CoresLost reports how many simulated cores injected executor kills
// have removed; SetCores re-provisions the budget and clears it.
func (m *MultiStream) CoresLost() int { return m.eng.CoresLost() }

// SetCores changes the simulated core budget for subsequent batches and
// restores any cores lost to injected kills.
func (m *MultiStream) SetCores(cores int) error { return m.eng.SetCores(cores) }

// BackpressureFactor is the cluster admission factor; see
// Stream.BackpressureFactor.
func (m *MultiStream) BackpressureFactor() float64 {
	if m.coord == nil {
		return 1
	}
	return m.coord.BackpressureFactor()
}

// ShardsDown reports how many cluster shards are currently marked dead;
// see Stream.ShardsDown.
func (m *MultiStream) ShardsDown() int {
	if m.coord == nil {
		return 0
	}
	return m.coord.Down()
}

// Close releases the stream's cluster connections, if any; see
// Stream.Close.
func (m *MultiStream) Close() error {
	if m.coord == nil {
		return nil
	}
	coord := m.coord
	m.coord = nil
	return coord.Close()
}

// Checkpoint serializes the stream's driver state; see Stream.Checkpoint.
func (m *MultiStream) Checkpoint() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.eng.Checkpoint(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreMulti rebuilds a MultiStream from a Checkpoint image; cfg and
// queries must match the checkpointed stream's. See Restore.
func RestoreMulti(cfg Config, image []byte, queries ...Query) (*MultiStream, error) {
	ec, scheme, err := cfg.build()
	if err != nil {
		return nil, err
	}
	eng, err := engine.Restore(ec, queries, bytes.NewReader(image))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	coord, err := cfg.Topology.connect(eng, queries)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(queries))
	for i, q := range queries {
		names[i] = q.Name
	}
	return &MultiStream{eng: eng, scheme: scheme, names: names, coord: coord}, nil
}

func (m *MultiStream) check(i int) error {
	if i < 0 || i >= len(m.names) {
		return fmt.Errorf("prompt: query index %d outside [0,%d)", i, len(m.names))
	}
	return nil
}
