package prompt

import (
	"fmt"
)

// MultiStream runs several queries over one input stream. The batching
// phase — frequency-aware statistics and partitioning — executes once per
// batch and all queries share the resulting data blocks; each query then
// runs as its own Map-Reduce job. Reports describe the primary query
// (index 0) in their per-stage details, while ProcessingTime and stability
// account for all jobs.
//
// MultiStream shares Stream's runtime: the batch lifecycle, Reconfigure,
// elasticity, rescaling, checkpointing, and the cluster surface are
// identical; MultiStream's answer accessors take a query index.
type MultiStream struct {
	streamCore
	names []string
}

// NewMulti builds a multi-query stream; it is NewMultiWithOptions for
// callers that already hold a Config literal. At least one query is
// required. Configuration failures wrap ErrBadConfig; cluster connection
// failures (cfg.Topology) wrap ErrCluster.
func NewMulti(cfg Config, queries ...Query) (*MultiStream, error) {
	c, err := newCore(cfg, queries)
	if err != nil {
		return nil, err
	}
	return &MultiStream{streamCore: c, names: queryNames(queries)}, nil
}

// Queries returns the query names in index order.
func (m *MultiStream) Queries() []string { return append([]string(nil), m.names...) }

// Result returns query i's previous batch output.
func (m *MultiStream) Result(i int) (map[string]float64, error) {
	if err := m.check(i); err != nil {
		return nil, err
	}
	return m.eng.LastResultOf(i), nil
}

// Window returns query i's current window answer (nil for windowless
// queries).
func (m *MultiStream) Window(i int) (map[string]float64, error) {
	if err := m.check(i); err != nil {
		return nil, err
	}
	agg := m.eng.WindowOf(i)
	if agg == nil {
		return nil, nil
	}
	return agg.Snapshot(), nil
}

// TopK returns the k largest entries of query i's window answer.
func (m *MultiStream) TopK(i, k int) ([]WindowEntry, error) {
	if err := m.check(i); err != nil {
		return nil, err
	}
	agg := m.eng.WindowOf(i)
	if agg == nil {
		return nil, fmt.Errorf("%w: query %d (%s)", ErrNoWindow, i, m.names[i])
	}
	return agg.TopK(k), nil
}

// HasWindow reports whether query i maintains a time window.
func (m *MultiStream) HasWindow(i int) (bool, error) {
	if err := m.check(i); err != nil {
		return false, err
	}
	return m.eng.WindowOf(i) != nil, nil
}

// RestoreMulti rebuilds a MultiStream from a Checkpoint image; cfg and
// queries must match the checkpointed stream's. See Restore.
func RestoreMulti(cfg Config, image []byte, queries ...Query) (*MultiStream, error) {
	c, err := restoreCore(cfg, queries, image)
	if err != nil {
		return nil, err
	}
	return &MultiStream{streamCore: c, names: queryNames(queries)}, nil
}

func queryNames(queries []Query) []string {
	names := make([]string, len(queries))
	for i, q := range queries {
		names[i] = q.Name
	}
	return names
}

func (m *MultiStream) check(i int) error {
	if i < 0 || i >= len(m.names) {
		return fmt.Errorf("prompt: query index %d outside [0,%d)", i, len(m.names))
	}
	return nil
}
