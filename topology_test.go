package prompt_test

import (
	"errors"
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"prompt"

	"prompt/internal/dist"
	"prompt/internal/transport"
	"prompt/internal/tuple"
	"prompt/internal/workload"
)

// scrubReports zeroes the wall-clock-measured report fields so runs that
// differ only in where the folds executed compare bit for bit.
func scrubReports(reps []prompt.BatchReport) []prompt.BatchReport {
	out := append([]prompt.BatchReport(nil), reps...)
	for i := range out {
		out[i].PartitionTime, out[i].PartitionOverflow = 0, 0
		out[i].ProcessingTime, out[i].QueueWait, out[i].Latency = 0, 0, 0
		out[i].W, out[i].Stable = 0, false
	}
	return out
}

func zipfSource(t *testing.T, seed int64) *workload.Source {
	t.Helper()
	keys, err := workload.NewZipfSampler("w", 400, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return &workload.Source{Name: "zipf", Rate: workload.ConstantRate(2000), Keys: keys, Seed: seed}
}

// serveShards starts one transport-served shard runtime per address over
// unix sockets and returns the addresses.
func serveShards(t *testing.T, n int, queries []prompt.Query) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var conns []net.Conn
	for i := 0; i < n; i++ {
		path := filepath.Join(t.TempDir(), "shard.sock")
		ln, err := net.Listen("unix", path)
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		sh := dist.NewShard(i, queries)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				mu.Lock()
				conns = append(conns, c)
				mu.Unlock()
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = transport.Serve(c, sh)
				}()
			}
		}()
		addrs[i] = "unix:" + path
	}
	t.Cleanup(func() {
		for _, ln := range lns {
			ln.Close()
		}
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
		wg.Wait()
	})
	return addrs
}

// TestClusterMatchesSingleProcess is the public face of the golden
// differential: the same stream over no cluster, an in-process loopback
// cluster, and a socket cluster produces bit-identical reports, windows,
// and per-batch results.
func TestClusterMatchesSingleProcess(t *testing.T) {
	q := prompt.WordCount(5*time.Second, time.Second)
	base := prompt.Config{
		BatchInterval: time.Second,
		MapTasks:      4,
		ReduceTasks:   4,
		Validate:      true,
	}

	run := func(t *testing.T, cfg prompt.Config) ([]prompt.BatchReport, map[string]float64, map[string]float64) {
		st, err := prompt.New(cfg, q)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		src := zipfSource(t, 42)
		reps, err := st.Run(func(start, end prompt.Time) ([]prompt.Tuple, error) {
			return src.Slice(start, end)
		}, 4)
		if err != nil {
			t.Fatal(err)
		}
		return scrubReports(reps), st.Window(), st.Result()
	}

	wantReps, wantWin, wantRes := run(t, base)

	t.Run("local-shards", func(t *testing.T) {
		cfg := base
		cfg.Topology = prompt.Topology{Local: 3}
		reps, win, res := run(t, cfg)
		if !reflect.DeepEqual(reps, wantReps) {
			t.Error("reports diverged on the loopback cluster")
		}
		if !reflect.DeepEqual(win, wantWin) || !reflect.DeepEqual(res, wantRes) {
			t.Error("answers diverged on the loopback cluster")
		}
	})

	t.Run("socket-shards", func(t *testing.T) {
		cfg := base
		cfg.Topology = prompt.Topology{
			Shards:          serveShards(t, 2, []prompt.Query{q}),
			ExchangeTimeout: 5 * time.Second,
		}
		reps, win, res := run(t, cfg)
		if !reflect.DeepEqual(reps, wantReps) {
			t.Error("reports diverged on the socket cluster")
		}
		if !reflect.DeepEqual(win, wantWin) || !reflect.DeepEqual(res, wantRes) {
			t.Error("answers diverged on the socket cluster")
		}
	})
}

func TestTopologyOptionValidation(t *testing.T) {
	q := prompt.WordCount(5*time.Second, time.Second)
	if _, err := prompt.NewWithOptions(q, prompt.WithShards(0)); !errors.Is(err, prompt.ErrBadConfig) {
		t.Errorf("WithShards(0): got %v, want ErrBadConfig", err)
	}
	if _, err := prompt.NewWithOptions(q, prompt.WithTransport(prompt.Topology{})); !errors.Is(err, prompt.ErrBadConfig) {
		t.Errorf("WithTransport(zero): got %v, want ErrBadConfig", err)
	}
	if _, err := prompt.NewWithOptions(q, prompt.WithTransport(prompt.Topology{
		Shards: []string{"unix:/tmp/x.sock"}, Local: 2,
	})); !errors.Is(err, prompt.ErrBadConfig) {
		t.Errorf("ambiguous topology: got %v, want ErrBadConfig", err)
	}
	// An unreachable cluster is a connection failure, not a config error.
	cfg := prompt.Config{Topology: prompt.Topology{
		Shards: []string{"unix:" + filepath.Join(t.TempDir(), "nobody.sock")},
		Retry:  prompt.RetryPolicy{MaxAttempts: 1, Backoff: tuple.Millisecond},
	}}
	if _, err := prompt.New(cfg, q); !errors.Is(err, prompt.ErrCluster) {
		t.Errorf("unreachable cluster: got %v, want ErrCluster", err)
	}
}

func TestClusterStreamLifecycle(t *testing.T) {
	st, err := prompt.NewWithOptions(prompt.WordCount(5*time.Second, time.Second),
		prompt.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if f := st.BackpressureFactor(); f != 1 {
		t.Errorf("initial BackpressureFactor = %v, want 1", f)
	}
	if n := st.ShardsDown(); n != 0 {
		t.Errorf("ShardsDown = %d, want 0", n)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}

	// Single-process streams are unaffected by the cluster surface.
	solo := testStream(t, prompt.SchemePrompt)
	if f := solo.BackpressureFactor(); f != 1 {
		t.Errorf("solo BackpressureFactor = %v, want 1", f)
	}
	if err := solo.Close(); err != nil {
		t.Errorf("solo Close: %v", err)
	}
}
