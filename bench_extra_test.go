// Additional micro-benchmarks for the substrate pieces outside the
// paper's figures: window maintenance, live execution, reordering, trace
// parsing, and the workload generators themselves.
package prompt_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"prompt"

	"prompt/internal/engine"
	"prompt/internal/partition"
	"prompt/internal/reducer"
	"prompt/internal/tuple"
	"prompt/internal/window"
	"prompt/internal/workload"
)

func BenchmarkWindowAddBatch(b *testing.B) {
	agg, err := window.NewAggregator(window.Sliding(30*tuple.Second, tuple.Second),
		window.Sum, window.SumInverse)
	if err != nil {
		b.Fatal(err)
	}
	// Each batch touches 10k keys.
	batch := make(map[string]float64, 10_000)
	for i := 0; i < 10_000; i++ {
		batch[fmt.Sprintf("k%d", i)] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := agg.AddBatch(tuple.Time(i+1)*tuple.Second, batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(10_000, "keys/op")
}

func BenchmarkRunLiveWordCount(b *testing.B) {
	batch := benchBatch(b, 200_000)
	blocks, err := partition.NewPrompt().Partition(partition.Input{Batch: batch}, 8)
	if err != nil {
		b.Fatal(err)
	}
	parted := &tuple.Partitioned{Batch: batch, Blocks: blocks}
	q := engine.Query{Name: "wc", Map: engine.CountMap, Reduce: window.Sum}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.RunLive(parted, q, reducer.NewPrompt(), 8, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(batch.Len()), "tuples/op")
}

func BenchmarkReordererIngestSeal(b *testing.B) {
	inner := func() *workload.Source {
		src, err := workload.Tweets(workload.ConstantRate(100_000),
			workload.DatasetDefaults{Cardinality: 20_000, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		return src
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		jit, err := workload.NewJittered(inner(), 100*tuple.Millisecond, 7)
		if err != nil {
			b.Fatal(err)
		}
		arrivals, err := jit.Arrivals(0, tuple.Second+100*tuple.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		r, err := engine.NewReorderer(100 * tuple.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, a := range arrivals {
			r.Ingest(a)
		}
		r.AdvanceWatermark(tuple.Second + 100*tuple.Millisecond)
		if _, err := r.Seal(tuple.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceReadWrite(b *testing.B) {
	batch := benchBatch(b, 100_000)
	tr := workload.NewTrace("bench", batch.Tuples)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.ReadTrace("bench", bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()), "tuples/op")
}

func BenchmarkSourceGeneration(b *testing.B) {
	for _, name := range []string{"tweets", "synd", "debs", "gcm", "tpch"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				src, err := workload.ByName(name, workload.ConstantRate(100_000), 1.0,
					workload.DatasetDefaults{Cardinality: 50_000, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := src.Slice(0, tuple.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEngineStepPromptVsHash(b *testing.B) {
	for _, scheme := range []prompt.Scheme{prompt.SchemePrompt, prompt.SchemeHash, prompt.SchemeTime} {
		b.Run(string(scheme), func(b *testing.B) {
			src, err := workload.Tweets(workload.ConstantRate(100_000),
				workload.DatasetDefaults{Cardinality: 20_000, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st := newBenchStream(b, scheme)
				src.Reset()
				ts, err := src.Slice(0, tuple.Second)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := st.ProcessBatch(ts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// newBenchStream builds a public-API stream for the step benchmarks.
func newBenchStream(b *testing.B, scheme prompt.Scheme) *prompt.Stream {
	b.Helper()
	st, err := prompt.New(prompt.Config{Scheme: scheme},
		prompt.WordCount(30*time.Second, time.Second))
	if err != nil {
		b.Fatal(err)
	}
	return st
}
