package prompt_test

// Full-stack integration tests: scenarios that exercise several subsystems
// together — the engine under the elastic controller with a recovering
// batch store, back-pressure closing the loop on an overloaded stream,
// adaptive batch sizing on the public API's engine, and trace-file
// round-trips driving a complete query.

import (
	"bytes"
	"math"
	"testing"
	"time"

	"prompt"

	"prompt/internal/backpressure"
	"prompt/internal/cluster"
	"prompt/internal/core"
	"prompt/internal/elastic"
	"prompt/internal/engine"
	"prompt/internal/experiment"
	"prompt/internal/fault"
	"prompt/internal/partition"
	"prompt/internal/tuple"
	"prompt/internal/window"
	"prompt/internal/workload"
)

// heavyCost is a cost model under which laptop-scale rates saturate a few
// cores, so stability dynamics are visible in fast tests.
func heavyCost() experiment.Params { return experiment.Quick() }

func TestIntegrationElasticWithRecovery(t *testing.T) {
	// Engine + Algorithm 4 + executor pool + batch replication, against a
	// rising workload; mid-run, recover an old batch and verify the run
	// is undisturbed and the recovered output matches.
	params := heavyCost()
	cfg := params.Cost
	ecfg := engine.Config{
		BatchInterval: tuple.Second,
		MapTasks:      2,
		ReduceTasks:   2,
		Cores:         2,
		Cost:          cfg,
	}
	ecfg = core.PromptScheme().Apply(ecfg)
	q := engine.WordCount(window.Sliding(5*tuple.Second, tuple.Second))
	re, err := engine.NewRecoverable(ecfg, q)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := elastic.NewController(elastic.Config{D: 2}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := cluster.NewExecutorPool(16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	driver, err := core.NewElasticDriver(re.Engine, ctrl, pool)
	if err != nil {
		t.Fatal(err)
	}

	keys, err := workload.NewUniformSampler("k", 3_000)
	if err != nil {
		t.Fatal(err)
	}
	src := &workload.Source{
		Name: "rising",
		Rate: workload.RampRate{From: 20_000, To: 150_000, Start: 0, End: 16 * tuple.Second},
		Keys: keys,
		Seed: 77,
	}

	outputs := map[int]map[string]float64{}
	for i := 0; i < 16; i++ {
		start := re.Now()
		end := start + tuple.Second
		ts, err := src.Slice(start, end)
		if err != nil {
			t.Fatal(err)
		}
		// Replicate, process, let the controller act.
		if _, err := re.Step(ts, start, end); err != nil {
			t.Fatal(err)
		}
		rep := re.Reports()[len(re.Reports())-1]
		act := ctrl.Observe(elastic.Observation{W: rep.W, Tuples: rep.Tuples, Keys: rep.Keys})
		if err := re.SetParallelism(act.MapTasks, act.ReduceTasks); err != nil {
			t.Fatal(err)
		}
		cp := map[string]float64{}
		for k, v := range re.LastResult() {
			cp[k] = v
		}
		outputs[i] = cp

		// Mid-run recovery of a recent batch.
		if i == 10 {
			recovered, err := re.Recover(8)
			if err != nil {
				t.Fatalf("recovery at batch %d: %v", i, err)
			}
			if len(recovered) != len(outputs[8]) {
				t.Fatalf("recovered %d keys, want %d", len(recovered), len(outputs[8]))
			}
			for k, v := range outputs[8] {
				if recovered[k] != v {
					t.Fatalf("recovered key %s = %v, want %v", k, recovered[k], v)
				}
			}
		}
	}
	_ = driver
	// Scale-out happened under the 7.5x ramp.
	last := re.Reports()[len(re.Reports())-1]
	if last.MapTasks <= 2 && last.ReduceTasks <= 2 {
		t.Errorf("controller never scaled out: %+v", last)
	}
}

func TestIntegrationBackpressureStabilizes(t *testing.T) {
	// An offered rate far above capacity; the AIMD throttle must find a
	// factor at which the system stops queueing.
	params := heavyCost()
	cfg := core.PromptScheme().Apply(engine.Config{
		BatchInterval: tuple.Second,
		MapTasks:      4,
		ReduceTasks:   4,
		Cores:         4,
		Cost:          params.Cost,
	})
	eng, err := engine.New(cfg, engine.Query{Name: "wc", Map: engine.CountMap, Reduce: window.Sum})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := workload.NewUniformSampler("k", 2_000)
	if err != nil {
		t.Fatal(err)
	}
	const offered = 600_000 // well above the ~4-core capacity
	throttle := backpressure.NewAIMD()
	// One continuous source whose rate follows the live throttle factor,
	// exactly how Spark's receiver-side back-pressure acts on ingestion.
	src := &workload.Source{
		Name: "burst",
		Rate: throttledRate{base: offered, factor: &throttle.Factor},
		Keys: keys,
		Seed: 3,
	}
	triggered := false
	var reports []engine.BatchReport
	for i := 0; i < 40; i++ {
		start := eng.Now()
		end := start + tuple.Second
		ts, err := src.Slice(start, end)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Step(ts, start, end)
		if err != nil {
			t.Fatal(err)
		}
		throttle.Observe(rep.Stable && rep.QueueWait == 0)
		if throttle.Triggered() {
			triggered = true
		}
		reports = append(reports, rep)
	}
	if !triggered {
		t.Fatal("back-pressure never engaged despite 600k/s offered on 4 cores")
	}
	// AIMD oscillates around the capacity by design; the guarantees are
	// that the backlog stays bounded (no runaway queueing) and that the
	// second half of the run is mostly stable.
	stable := 0
	var maxWait tuple.Time
	for _, rep := range reports[20:] {
		if rep.Stable {
			stable++
		}
		if rep.QueueWait > maxWait {
			maxWait = rep.QueueWait
		}
	}
	if stable < 10 {
		t.Errorf("only %d/20 stable batches in the throttled steady state", stable)
	}
	if maxWait > 3*tuple.Second {
		t.Errorf("queue wait grew to %v despite back-pressure", maxWait)
	}
}

func TestIntegrationTraceDrivesPublicAPI(t *testing.T) {
	// streamgen-format trace -> Trace -> public API stream -> windowed
	// answer identical to generating directly.
	gen, err := workload.Tweets(workload.ConstantRate(8_000),
		workload.DatasetDefaults{Cardinality: 1_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var all []tuple.Tuple
	for i := 0; i < 3; i++ {
		ts, err := gen.Slice(tuple.Time(i)*tuple.Second, tuple.Time(i+1)*tuple.Second)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, ts...)
	}
	var csv bytes.Buffer
	if err := workload.NewTrace("t", all).WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	trace, err := workload.ReadTrace("t", &csv)
	if err != nil {
		t.Fatal(err)
	}

	st, err := prompt.New(prompt.Config{Validate: true}, prompt.WordCount(10*time.Second, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ts, err := trace.Slice(st.Now(), st.Now()+tuple.Second)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.ProcessBatch(ts); err != nil {
			t.Fatal(err)
		}
	}
	want := map[string]float64{}
	for i := range all {
		want[all[i].Key]++
	}
	got := st.Window()
	if len(got) != len(want) {
		t.Fatalf("window keys %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if math.Abs(got[k]-v) > 1e-9 {
			t.Errorf("key %s = %v, want %v", k, got[k], v)
		}
	}
}

func TestIntegrationLiveMatchesSimulatedOrdering(t *testing.T) {
	// The cost-model simulation claims balanced blocks beat skewed ones;
	// verify the real (goroutine) runtime agrees at least on results, and
	// that prompt's live bucket sizes are flatter than hash's.
	params := heavyCost()
	src, err := workload.SynD(workload.ConstantRate(80_000), 1.4,
		workload.DatasetDefaults{Cardinality: 5_000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := src.Slice(0, tuple.Second)
	if err != nil {
		t.Fatal(err)
	}
	batch := &tuple.Batch{Start: 0, End: tuple.Second, Tuples: ts}
	q := engine.Query{Name: "wc", Map: engine.CountMap, Reduce: window.Sum}

	spreads := map[string]int{}
	for _, scheme := range []core.Scheme{mustBaseline(t, "hash"), core.PromptScheme()} {
		blocks, err := scheme.Partitioner.Partition(
			partition.Input{Batch: batch}, params.Blocks)
		if err != nil {
			t.Fatal(err)
		}
		live, err := engine.RunLive(&tuple.Partitioned{Batch: batch, Blocks: blocks},
			q, scheme.Assigner, params.Reducers, 4)
		if err != nil {
			t.Fatal(err)
		}
		minB, maxB := live.BucketSizes[0], live.BucketSizes[0]
		for _, s := range live.BucketSizes {
			if s < minB {
				minB = s
			}
			if s > maxB {
				maxB = s
			}
		}
		spreads[scheme.Name] = maxB - minB
	}
	if spreads["prompt"] >= spreads["hash"] {
		t.Errorf("live bucket spread: prompt %d not below hash %d",
			spreads["prompt"], spreads["hash"])
	}
}

// throttledRate offers base tuples/second scaled by a live throttle
// factor, read at generation time.
type throttledRate struct {
	base   float64
	factor *float64
}

// RateAt implements workload.RateShape.
func (r throttledRate) RateAt(tuple.Time) float64 { return r.base * *r.factor }

func mustBaseline(t *testing.T, name string) core.Scheme {
	t.Helper()
	s, err := core.Baseline(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestIntegrationBackpressureRecoveryAware closes the loop between fault
// recovery and the AIMD throttle: a batch that overshoots its interval
// only because it recomputed a lost output takes the gentle RecoveryCut,
// while a naive stability-only controller over-throttles on the same
// run. The rate is chosen so processing fits the interval comfortably
// and only the recovery surcharge pushes the faulted batch over.
func TestIntegrationBackpressureRecoveryAware(t *testing.T) {
	plan, err := fault.ParsePlan("lose@2:fails=1")
	if err != nil {
		t.Fatal(err)
	}
	params := experiment.Default()
	cfg := engine.Config{
		BatchInterval: tuple.Second,
		MapTasks:      8,
		ReduceTasks:   8,
		Cores:         8,
		Cost:          params.Cost,
		Faults:        plan,
	}
	eng, err := engine.New(cfg, engine.Query{Name: "wc", Map: engine.CountMap, Reduce: window.Sum})
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.Tweets(workload.ConstantRate(120_000),
		workload.DatasetDefaults{Cardinality: 50_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := eng.RunBatches(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	faulted := reports[2]
	if faulted.RecoveryTime <= 0 || faulted.Stable {
		t.Fatalf("batch 2 not recovery-destabilized as intended: %+v", faulted)
	}
	if faulted.ProcessingTime-faulted.RecoveryTime > cfg.BatchInterval {
		t.Fatalf("batch 2 would be late even without recovery (proc %v, recovery %v); lower the rate",
			faulted.ProcessingTime, faulted.RecoveryTime)
	}

	aware := backpressure.NewAIMD()
	naive := backpressure.NewAIMD()
	for _, r := range reports {
		stable := r.Stable && r.QueueWait == 0
		aware.ObserveBatch(stable, int64(r.ProcessingTime), int64(r.RecoveryTime), int64(cfg.BatchInterval))
		naive.Observe(stable)
	}
	if aware.Factor <= naive.Factor {
		t.Errorf("recovery-aware throttle (%.3f) should hold more rate than the naive one (%.3f)",
			aware.Factor, naive.Factor)
	}
}
