package prompt

import (
	"fmt"

	"prompt/internal/core"
	"prompt/internal/engine"
)

// Stream is a running streaming query on the micro-batch engine. Feed it
// one batch interval of tuples at a time with ProcessBatch; read windowed
// answers with Window/TopK and performance measurements from the returned
// reports. A Stream is not safe for concurrent use — like the Spark
// driver, one goroutine owns the batch lifecycle.
type Stream struct {
	eng    *engine.Engine
	scheme core.Scheme
}

// New builds a Stream for the query under the given configuration.
// Construction failures wrap ErrBadConfig.
func New(cfg Config, q Query) (*Stream, error) {
	ec, scheme, err := cfg.build()
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(ec, q)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return &Stream{eng: eng, scheme: scheme}, nil
}

// SchemeName reports which partitioning scheme the stream runs.
func (s *Stream) SchemeName() string { return s.scheme.Name }

// Now returns the start of the next batch interval: tuples passed to the
// next ProcessBatch call must have timestamps in [Now, Now+BatchInterval).
func (s *Stream) Now() Time { return s.eng.Now() }

// BatchInterval returns the configured heartbeat.
func (s *Stream) BatchInterval() Time { return s.eng.Config().BatchInterval }

// ProcessBatch ingests the tuples of the next batch interval and runs the
// full micro-batch lifecycle: statistics, partitioning, Map stage, bucket
// assignment, Reduce stage, and window maintenance. Tuples must be stamped
// within [Now, Now+BatchInterval).
func (s *Stream) ProcessBatch(tuples []Tuple) (BatchReport, error) {
	start := s.eng.Now()
	end := start + s.eng.Config().BatchInterval
	return s.eng.Step(tuples, start, end)
}

// Result returns the previous batch's per-key Reduce output.
func (s *Stream) Result() map[string]float64 { return s.eng.LastResult() }

// Window returns the current window answer (nil for windowless queries).
func (s *Stream) Window() map[string]float64 { return s.eng.WindowSnapshot() }

// HasWindow reports whether the query maintains a time window; when it
// does not, Window returns nil and TopK returns ErrNoWindow.
func (s *Stream) HasWindow() bool { return s.eng.Window() != nil }

// TopK returns the k largest entries of the current window answer. For a
// windowless query it returns an error wrapping ErrNoWindow.
func (s *Stream) TopK(k int) ([]WindowEntry, error) {
	agg := s.eng.Window()
	if agg == nil {
		return nil, ErrNoWindow
	}
	return agg.TopK(k), nil
}

// Reports returns all batch reports since the stream started.
func (s *Stream) Reports() []BatchReport { return s.eng.Reports() }

// SetParallelism changes the Map/Reduce task counts for subsequent batches.
func (s *Stream) SetParallelism(mapTasks, reduceTasks int) error {
	return s.eng.SetParallelism(mapTasks, reduceTasks)
}

// SetCores changes the simulated core budget for subsequent batches.
func (s *Stream) SetCores(cores int) error { return s.eng.SetCores(cores) }

// SetWorkers changes the number of real worker goroutines executing the
// batch pipeline for subsequent batches: 0 restores the single-goroutine
// driver, negative selects GOMAXPROCS. Reports are unaffected.
func (s *Stream) SetWorkers(workers int) error { return s.eng.SetWorkers(workers) }

// SetObserver installs (or, with nil, removes) a batch-lifecycle observer
// for subsequent batches; see Observer and Collector. Observers never
// influence reports.
func (s *Stream) SetObserver(obs Observer) { s.eng.SetObserver(obs) }

// Engine exposes the underlying engine for advanced integrations (the
// benchmark harness and the elastic driver use it).
func (s *Stream) Engine() *engine.Engine { return s.eng }
