package prompt

import (
	"context"
	"fmt"

	"prompt/internal/core"
	"prompt/internal/engine"
)

// BatchSource yields the tuples of one batch interval [start, end). Run
// and RunContext pull from it once per batch; returned tuples must carry
// timestamps inside the interval.
type BatchSource func(start, end Time) ([]Tuple, error)

// FixedBatches adapts pre-materialized batch slices into a BatchSource:
// call i returns batches[i] regardless of the interval bounds, and an
// error after the slices run out.
func FixedBatches(batches ...[]Tuple) BatchSource {
	i := 0
	return func(start, end Time) ([]Tuple, error) {
		if i >= len(batches) {
			return nil, fmt.Errorf("prompt: batch source exhausted after %d batches", len(batches))
		}
		b := batches[i]
		i++
		return b, nil
	}
}

// Stream is a running streaming query on the micro-batch engine. Feed it
// one batch interval of tuples at a time with ProcessBatch; read windowed
// answers with Window/TopK and performance measurements from the returned
// reports. A Stream is not safe for concurrent use — like the Spark
// driver, one goroutine owns the batch lifecycle.
type Stream struct {
	eng    *engine.Engine
	scheme core.Scheme
}

// New builds a Stream for the query under the given configuration.
// Construction failures wrap ErrBadConfig.
func New(cfg Config, q Query) (*Stream, error) {
	ec, scheme, err := cfg.build()
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(ec, q)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return &Stream{eng: eng, scheme: scheme}, nil
}

// SchemeName reports which partitioning scheme the stream runs.
func (s *Stream) SchemeName() string { return s.scheme.Name }

// Now returns the start of the next batch interval: tuples passed to the
// next ProcessBatch call must have timestamps in [Now, Now+BatchInterval).
func (s *Stream) Now() Time { return s.eng.Now() }

// BatchInterval returns the configured heartbeat.
func (s *Stream) BatchInterval() Time { return s.eng.Config().BatchInterval }

// ProcessBatch ingests the tuples of the next batch interval and runs the
// full micro-batch lifecycle: statistics, partitioning, Map stage, bucket
// assignment, Reduce stage, fault recovery, and window maintenance.
// Tuples must be stamped within [Now, Now+BatchInterval).
func (s *Stream) ProcessBatch(tuples []Tuple) (BatchReport, error) {
	return s.ProcessBatchContext(context.Background(), tuples)
}

// ProcessBatchContext is ProcessBatch with cooperative cancellation: the
// pipeline checks ctx between stages and inside the worker-pool barriers,
// so cancellation surfaces well within one batch's work. A cancelled
// batch commits nothing and the stream stays usable.
func (s *Stream) ProcessBatchContext(ctx context.Context, tuples []Tuple) (BatchReport, error) {
	start := s.eng.Now()
	end := start + s.eng.Config().BatchInterval
	rep, err := s.eng.StepContext(ctx, tuples, start, end)
	if err != nil {
		return BatchReport{}, err
	}
	return newBatchReport(s.scheme.Name, rep), nil
}

// Run pulls n consecutive batch intervals from the source and processes
// them, returning their reports. It is RunContext with
// context.Background().
func (s *Stream) Run(src BatchSource, n int) ([]BatchReport, error) {
	return s.RunContext(context.Background(), src, n)
}

// RunContext drives n batches with cooperative cancellation: once ctx is
// done the run stops — between batches, between pipeline stages, or
// mid-barrier inside the worker pool — with the context's error and the
// reports of the batches already committed. Nothing of the in-flight
// batch is committed and no goroutines are left behind.
func (s *Stream) RunContext(ctx context.Context, src BatchSource, n int) ([]BatchReport, error) {
	out := make([]BatchReport, 0, n)
	for i := 0; i < n; i++ {
		// Check before pulling from the source, so a cancelled run never
		// consumes an interval it will not process.
		if err := ctx.Err(); err != nil {
			return out, err
		}
		start := s.eng.Now()
		end := start + s.eng.Config().BatchInterval
		tuples, err := src(start, end)
		if err != nil {
			return out, err
		}
		rep, err := s.eng.StepContext(ctx, tuples, start, end)
		if err != nil {
			return out, err
		}
		out = append(out, newBatchReport(s.scheme.Name, rep))
	}
	return out, nil
}

// Result returns the previous batch's per-key Reduce output.
func (s *Stream) Result() map[string]float64 { return s.eng.LastResult() }

// Window returns the current window answer (nil for windowless queries).
func (s *Stream) Window() map[string]float64 { return s.eng.WindowSnapshot() }

// HasWindow reports whether the query maintains a time window; when it
// does not, Window returns nil and TopK returns ErrNoWindow.
func (s *Stream) HasWindow() bool { return s.eng.Window() != nil }

// TopK returns the k largest entries of the current window answer. For a
// windowless query it returns an error wrapping ErrNoWindow.
func (s *Stream) TopK(k int) ([]WindowEntry, error) {
	agg := s.eng.Window()
	if agg == nil {
		return nil, ErrNoWindow
	}
	return agg.TopK(k), nil
}

// Reports returns all batch reports since the stream started.
func (s *Stream) Reports() []BatchReport { return newBatchReports(s.scheme.Name, s.eng.Reports()) }

// CoresLost reports how many simulated cores injected executor kills
// have removed; SetCores re-provisions the budget and clears it.
func (s *Stream) CoresLost() int { return s.eng.CoresLost() }

// SetParallelism changes the Map/Reduce task counts for subsequent batches.
func (s *Stream) SetParallelism(mapTasks, reduceTasks int) error {
	return s.eng.SetParallelism(mapTasks, reduceTasks)
}

// SetCores changes the simulated core budget for subsequent batches.
func (s *Stream) SetCores(cores int) error { return s.eng.SetCores(cores) }

// SetWorkers changes the number of real worker goroutines executing the
// batch pipeline for subsequent batches: 0 restores the single-goroutine
// driver, negative selects GOMAXPROCS. Reports are unaffected.
func (s *Stream) SetWorkers(workers int) error { return s.eng.SetWorkers(workers) }

// SetObserver installs (or, with nil, removes) a batch-lifecycle observer
// for subsequent batches; see Observer and Collector. Observers never
// influence reports.
func (s *Stream) SetObserver(obs Observer) { s.eng.SetObserver(obs) }

// Engine exposes the underlying engine for advanced integrations.
//
// Deprecated: Engine leaks internal/engine types through the public API
// and will be removed once the remaining harnesses migrate. Everything a
// report consumer needs is on BatchReport (typed, JSON-serializable) and
// the Stream methods; runtime control is covered by SetParallelism,
// SetCores, SetWorkers, and SetObserver.
func (s *Stream) Engine() *engine.Engine { return s.eng }
