package prompt

import (
	"fmt"
)

// BatchSource yields the tuples of one batch interval [start, end). Run
// and RunContext pull from it once per batch; returned tuples must carry
// timestamps inside the interval.
type BatchSource func(start, end Time) ([]Tuple, error)

// FixedBatches adapts pre-materialized batch slices into a BatchSource:
// call i returns batches[i] regardless of the interval bounds, and an
// error after the slices run out.
func FixedBatches(batches ...[]Tuple) BatchSource {
	i := 0
	return func(start, end Time) ([]Tuple, error) {
		if i >= len(batches) {
			return nil, fmt.Errorf("prompt: batch source exhausted after %d batches", len(batches))
		}
		b := batches[i]
		i++
		return b, nil
	}
}

// Stream is a running streaming query on the micro-batch engine. Feed it
// one batch interval of tuples at a time with ProcessBatch; read windowed
// answers with Window/TopK and performance measurements from the returned
// reports. A Stream is not safe for concurrent use — like the Spark
// driver, one goroutine owns the batch lifecycle.
//
// Stream and MultiStream share one runtime: the batch lifecycle,
// Reconfigure, elasticity, rescaling, checkpointing, and the cluster
// surface are identical; Stream adds the single-query answer accessors.
type Stream struct {
	streamCore
}

// New builds a Stream for the query under the given configuration. It is
// NewWithOptions for callers that already hold a Config literal.
// Configuration failures wrap ErrBadConfig; when cfg.Topology names a
// cluster, New dials and handshakes every shard before returning, and
// connection failures wrap ErrCluster.
func New(cfg Config, q Query) (*Stream, error) {
	c, err := newCore(cfg, []Query{q})
	if err != nil {
		return nil, err
	}
	return &Stream{streamCore: c}, nil
}

// Result returns the previous batch's per-key Reduce output.
func (s *Stream) Result() map[string]float64 { return s.eng.LastResult() }

// Window returns the current window answer (nil for windowless queries).
func (s *Stream) Window() map[string]float64 { return s.eng.WindowSnapshot() }

// HasWindow reports whether the query maintains a time window; when it
// does not, Window returns nil and TopK returns ErrNoWindow.
func (s *Stream) HasWindow() bool { return s.eng.Window() != nil }

// TopK returns the k largest entries of the current window answer. For a
// windowless query it returns an error wrapping ErrNoWindow.
func (s *Stream) TopK(k int) ([]WindowEntry, error) {
	agg := s.eng.Window()
	if agg == nil {
		return nil, ErrNoWindow
	}
	return agg.TopK(k), nil
}

// Restore rebuilds a Stream from a Checkpoint image. cfg and q must
// match the checkpointed stream's configuration — query functions cannot
// be serialized, so the caller reattaches them; determinism of the query
// functions is what makes the resumed computation identical. A topology
// in cfg is dialed exactly as in New. A rescale pending at checkpoint
// time completes at the restored stream's next batch boundary.
func Restore(cfg Config, q Query, image []byte) (*Stream, error) {
	c, err := restoreCore(cfg, []Query{q}, image)
	if err != nil {
		return nil, err
	}
	return &Stream{streamCore: c}, nil
}

// buildConfig folds options over the zero Config.
func buildConfig(opts []Option) (Config, error) {
	var cfg Config
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return Config{}, err
		}
	}
	return cfg, nil
}
