package prompt

import (
	"bytes"
	"context"
	"fmt"

	"prompt/internal/core"
	"prompt/internal/dist"
	"prompt/internal/engine"
)

// BatchSource yields the tuples of one batch interval [start, end). Run
// and RunContext pull from it once per batch; returned tuples must carry
// timestamps inside the interval.
type BatchSource func(start, end Time) ([]Tuple, error)

// FixedBatches adapts pre-materialized batch slices into a BatchSource:
// call i returns batches[i] regardless of the interval bounds, and an
// error after the slices run out.
func FixedBatches(batches ...[]Tuple) BatchSource {
	i := 0
	return func(start, end Time) ([]Tuple, error) {
		if i >= len(batches) {
			return nil, fmt.Errorf("prompt: batch source exhausted after %d batches", len(batches))
		}
		b := batches[i]
		i++
		return b, nil
	}
}

// Stream is a running streaming query on the micro-batch engine. Feed it
// one batch interval of tuples at a time with ProcessBatch; read windowed
// answers with Window/TopK and performance measurements from the returned
// reports. A Stream is not safe for concurrent use — like the Spark
// driver, one goroutine owns the batch lifecycle.
type Stream struct {
	eng    *engine.Engine
	scheme core.Scheme
	coord  *dist.Coordinator // non-nil when a Topology is configured
}

// New builds a Stream for the query under the given configuration.
// Configuration failures wrap ErrBadConfig; when cfg.Topology names a
// cluster, New dials and handshakes every shard before returning, and
// connection failures wrap ErrCluster.
func New(cfg Config, q Query) (*Stream, error) {
	ec, scheme, err := cfg.build()
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(ec, q)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	coord, err := cfg.Topology.connect(eng, []Query{q})
	if err != nil {
		return nil, err
	}
	return &Stream{eng: eng, scheme: scheme, coord: coord}, nil
}

// SchemeName reports which partitioning scheme the stream runs.
func (s *Stream) SchemeName() string { return s.scheme.Name }

// Now returns the start of the next batch interval: tuples passed to the
// next ProcessBatch call must have timestamps in [Now, Now+BatchInterval).
func (s *Stream) Now() Time { return s.eng.Now() }

// BatchInterval returns the configured heartbeat.
func (s *Stream) BatchInterval() Time { return s.eng.Config().BatchInterval }

// ProcessBatch ingests the tuples of the next batch interval and runs the
// full micro-batch lifecycle: statistics, partitioning, Map stage, bucket
// assignment, Reduce stage, fault recovery, and window maintenance.
// Tuples must be stamped within [Now, Now+BatchInterval).
func (s *Stream) ProcessBatch(tuples []Tuple) (BatchReport, error) {
	return s.ProcessBatchContext(context.Background(), tuples)
}

// ProcessBatchContext is ProcessBatch with cooperative cancellation: the
// pipeline checks ctx between stages and inside the worker-pool barriers,
// so cancellation surfaces well within one batch's work. A cancelled
// batch commits nothing and the stream stays usable.
func (s *Stream) ProcessBatchContext(ctx context.Context, tuples []Tuple) (BatchReport, error) {
	start := s.eng.Now()
	end := start + s.eng.Config().BatchInterval
	rep, err := s.eng.StepContext(ctx, tuples, start, end)
	if err != nil {
		return BatchReport{}, err
	}
	return newBatchReport(s.scheme.Name, rep), nil
}

// Run pulls n consecutive batch intervals from the source and processes
// them, returning their reports. It is RunContext with
// context.Background().
func (s *Stream) Run(src BatchSource, n int) ([]BatchReport, error) {
	return s.RunContext(context.Background(), src, n)
}

// RunContext drives n batches with cooperative cancellation: once ctx is
// done the run stops — between batches, between pipeline stages, or
// mid-barrier inside the worker pool — with the context's error and the
// reports of the batches already committed. Nothing of the in-flight
// batch is committed and no goroutines are left behind.
func (s *Stream) RunContext(ctx context.Context, src BatchSource, n int) ([]BatchReport, error) {
	out := make([]BatchReport, 0, n)
	for i := 0; i < n; i++ {
		// Check before pulling from the source, so a cancelled run never
		// consumes an interval it will not process.
		if err := ctx.Err(); err != nil {
			return out, err
		}
		start := s.eng.Now()
		end := start + s.eng.Config().BatchInterval
		tuples, err := src(start, end)
		if err != nil {
			return out, err
		}
		rep, err := s.eng.StepContext(ctx, tuples, start, end)
		if err != nil {
			return out, err
		}
		out = append(out, newBatchReport(s.scheme.Name, rep))
	}
	return out, nil
}

// Result returns the previous batch's per-key Reduce output.
func (s *Stream) Result() map[string]float64 { return s.eng.LastResult() }

// Window returns the current window answer (nil for windowless queries).
func (s *Stream) Window() map[string]float64 { return s.eng.WindowSnapshot() }

// HasWindow reports whether the query maintains a time window; when it
// does not, Window returns nil and TopK returns ErrNoWindow.
func (s *Stream) HasWindow() bool { return s.eng.Window() != nil }

// TopK returns the k largest entries of the current window answer. For a
// windowless query it returns an error wrapping ErrNoWindow.
func (s *Stream) TopK(k int) ([]WindowEntry, error) {
	agg := s.eng.Window()
	if agg == nil {
		return nil, ErrNoWindow
	}
	return agg.TopK(k), nil
}

// Reports returns all batch reports since the stream started.
func (s *Stream) Reports() []BatchReport { return newBatchReports(s.scheme.Name, s.eng.Reports()) }

// CoresLost reports how many simulated cores injected executor kills
// have removed; SetCores re-provisions the budget and clears it.
func (s *Stream) CoresLost() int { return s.eng.CoresLost() }

// SetParallelism changes the Map/Reduce task counts for subsequent batches.
func (s *Stream) SetParallelism(mapTasks, reduceTasks int) error {
	return s.eng.SetParallelism(mapTasks, reduceTasks)
}

// SetCores changes the simulated core budget for subsequent batches.
func (s *Stream) SetCores(cores int) error { return s.eng.SetCores(cores) }

// SetWorkers changes the number of real worker goroutines executing the
// batch pipeline for subsequent batches: 0 restores the single-goroutine
// driver, negative selects GOMAXPROCS. Reports are unaffected.
func (s *Stream) SetWorkers(workers int) error { return s.eng.SetWorkers(workers) }

// SetObserver installs (or, with nil, removes) a batch-lifecycle observer
// for subsequent batches; see Observer and Collector. Observers never
// influence reports.
func (s *Stream) SetObserver(obs Observer) { s.eng.SetObserver(obs) }

// BackpressureFactor is the cluster admission factor in [0, 1]: the
// minimum AIMD factor any live shard piggybacked on its latest reply.
// Sources should multiply their offered rate by it. Without a cluster —
// or before the first shard reply — it is 1.
func (s *Stream) BackpressureFactor() float64 {
	if s.coord == nil {
		return 1
	}
	return s.coord.BackpressureFactor()
}

// ShardsDown reports how many cluster shards are currently marked dead
// (their folds recomputed locally). Without a cluster it is 0. Shard
// loss never changes answers — only wall-clock time.
func (s *Stream) ShardsDown() int {
	if s.coord == nil {
		return 0
	}
	return s.coord.Down()
}

// Close releases the stream's cluster connections, if any. The stream
// itself holds no other resources; a closed stream must not process
// further batches. Close on a single-process stream is a no-op.
func (s *Stream) Close() error {
	if s.coord == nil {
		return nil
	}
	coord := s.coord
	s.coord = nil
	return coord.Close()
}

// Checkpoint serializes the stream's driver state — batch position,
// window contents, report history, reorder buffer, throttle — so a new
// process can Restore and resume exactly where this one stopped. Call it
// between batches. Cluster shards hold no checkpointable state: the
// image is entirely driver-side, so a stream may checkpoint under one
// topology and restore under another.
func (s *Stream) Checkpoint() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.eng.Checkpoint(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Restore rebuilds a Stream from a Checkpoint image. cfg and q must
// match the checkpointed stream's configuration — query functions cannot
// be serialized, so the caller reattaches them; determinism of the query
// functions is what makes the resumed computation identical. A topology
// in cfg is dialed exactly as in New.
func Restore(cfg Config, q Query, image []byte) (*Stream, error) {
	ec, scheme, err := cfg.build()
	if err != nil {
		return nil, err
	}
	eng, err := engine.Restore(ec, []Query{q}, bytes.NewReader(image))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	coord, err := cfg.Topology.connect(eng, []Query{q})
	if err != nil {
		return nil, err
	}
	return &Stream{eng: eng, scheme: scheme, coord: coord}, nil
}
