package prompt_test

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"prompt"
)

func TestParseScheme(t *testing.T) {
	cases := []struct {
		in   string
		want prompt.Scheme
	}{
		{"", prompt.SchemePrompt},
		{"prompt", prompt.SchemePrompt},
		{"prompt-postsort", prompt.SchemePromptPostSort},
		{"hash", prompt.SchemeHash},
		{"time", prompt.SchemeTime},
		{"shuffle", prompt.SchemeShuffle},
		{"pk2", prompt.SchemePK2},
		{"pk5", prompt.SchemePK5},
		{"cam", prompt.SchemeCAM},
		{"ffd", prompt.SchemeFFD},
		{"fragmin", prompt.SchemeFragMin},
	}
	for _, c := range cases {
		got, err := prompt.ParseScheme(c.in)
		if err != nil {
			t.Fatalf("ParseScheme(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseScheme(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if _, err := prompt.ParseScheme("nosuch"); !errors.Is(err, prompt.ErrBadConfig) {
		t.Errorf("ParseScheme(nosuch) error = %v, want ErrBadConfig", err)
	}
}

func TestSchemesRoundTrip(t *testing.T) {
	schemes := prompt.Schemes()
	if len(schemes) != len(prompt.SchemeNames()) {
		t.Fatalf("Schemes/SchemeNames length mismatch: %d vs %d", len(schemes), len(prompt.SchemeNames()))
	}
	for _, s := range schemes {
		got, err := prompt.ParseScheme(string(s))
		if err != nil || got != s {
			t.Errorf("scheme %q does not round-trip: %q, %v", s, got, err)
		}
	}
	var zero prompt.Scheme
	if zero.String() != "prompt" {
		t.Errorf("zero Scheme.String() = %q, want prompt", zero.String())
	}
}

func TestNewWrapsErrBadConfig(t *testing.T) {
	bad := []prompt.Config{
		{Scheme: "nosuch"},
		{BatchInterval: -time.Second},
		{StatsShards: -1},
	}
	for _, cfg := range bad {
		if _, err := prompt.New(cfg, prompt.WordCount(time.Minute, time.Second)); !errors.Is(err, prompt.ErrBadConfig) {
			t.Errorf("New(%+v) error = %v, want ErrBadConfig", cfg, err)
		}
	}
	if _, err := prompt.NewMulti(prompt.Config{}); !errors.Is(err, prompt.ErrBadConfig) {
		t.Errorf("NewMulti with no queries: %v, want ErrBadConfig", err)
	}
}

func TestNewWithOptions(t *testing.T) {
	st, err := prompt.NewWithOptions(prompt.WordCount(time.Minute, time.Second),
		prompt.WithBatchInterval(500*time.Millisecond),
		prompt.WithParallelism(16, 12),
		prompt.WithScheme(prompt.SchemeHash),
		prompt.WithCores(16),
		prompt.WithWorkers(4),
		prompt.WithStatsShards(2),
		prompt.WithEarlyRelease(0.05),
		prompt.WithValidation(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	if st.SchemeName() != "hash" {
		t.Errorf("scheme = %q, want hash", st.SchemeName())
	}
	if got := st.BatchInterval(); got.Seconds() != 0.5 {
		t.Errorf("batch interval = %v, want 0.5s", got)
	}
}

func TestOptionsValidateEagerly(t *testing.T) {
	bad := []prompt.Option{
		prompt.WithBatchInterval(0),
		prompt.WithBatchInterval(-time.Second),
		prompt.WithParallelism(0, 4),
		prompt.WithParallelism(4, -1),
		prompt.WithScheme("nosuch"),
		prompt.WithCores(0),
		prompt.WithStatsShards(0),
		prompt.WithEarlyRelease(-0.1),
		prompt.WithEarlyRelease(0.6),
	}
	for i, opt := range bad {
		if _, err := prompt.NewWithOptions(prompt.WordCount(time.Minute, time.Second), opt); !errors.Is(err, prompt.ErrBadConfig) {
			t.Errorf("bad option %d: error = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestHasWindowAndErrNoWindow(t *testing.T) {
	windowed := testStream(t, prompt.SchemePrompt)
	if !windowed.HasWindow() {
		t.Error("sliding word count reports HasWindow() = false")
	}

	perBatch, err := prompt.New(prompt.Config{}, prompt.PerBatch("count", nil, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if perBatch.HasWindow() {
		t.Error("per-batch query reports HasWindow() = true")
	}
	if _, err := perBatch.TopK(3); !errors.Is(err, prompt.ErrNoWindow) {
		t.Errorf("TopK on windowless stream: %v, want ErrNoWindow", err)
	}
}

func TestMultiStreamHasWindowAndErrNoWindow(t *testing.T) {
	m, err := prompt.NewMulti(prompt.Config{},
		prompt.WordCount(time.Minute, time.Second),
		prompt.PerBatch("count", nil, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if has, err := m.HasWindow(0); err != nil || !has {
		t.Errorf("HasWindow(0) = %v, %v; want true", has, err)
	}
	if has, err := m.HasWindow(1); err != nil || has {
		t.Errorf("HasWindow(1) = %v, %v; want false", has, err)
	}
	if _, err := m.HasWindow(2); err == nil {
		t.Error("HasWindow(2) accepted out-of-range index")
	}
	if _, err := m.TopK(1, 3); !errors.Is(err, prompt.ErrNoWindow) {
		t.Errorf("TopK on windowless query: %v, want ErrNoWindow", err)
	}
}

func TestStreamSetWorkersMidRun(t *testing.T) {
	st := testStream(t, prompt.SchemePrompt)
	ref := testStream(t, prompt.SchemePrompt)
	for batch := 0; batch < 4; batch++ {
		if err := st.SetWorkers(batch % 3); err != nil { // 0, 1, 2, 0 workers
			t.Fatal(err)
		}
		tuples := apiTestBatch(st, batch)
		if _, err := st.ProcessBatch(tuples); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.ProcessBatch(apiTestBatch(ref, batch)); err != nil {
			t.Fatal(err)
		}
	}
	got, want := st.Window(), ref.Window()
	if len(got) != len(want) {
		t.Fatalf("window size %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %s = %v, want %v", k, got[k], v)
		}
	}
}

// apiTestBatch deterministically fills one batch interval of the stream.
func apiTestBatch(st *prompt.Stream, batch int) []prompt.Tuple {
	start := st.Now()
	keys := []string{"a", "b", "c", "d", "e"}
	tuples := make([]prompt.Tuple, 0, 200)
	for i := 0; i < 200; i++ {
		ts := start + prompt.Time(i)*st.BatchInterval()/200
		tuples = append(tuples, prompt.NewTuple(ts, keys[(i+batch)%len(keys)], 1))
	}
	return tuples
}

// streamAPI is the surface Stream and MultiStream share through the
// embedded core: one construction path, one batch lifecycle, one
// reconfiguration and elasticity story.
type streamAPI interface {
	SchemeName() string
	Now() prompt.Time
	BatchInterval() prompt.Time
	Parallelism() (int, int)
	ProcessBatch([]prompt.Tuple) (prompt.BatchReport, error)
	Run(prompt.BatchSource, int) ([]prompt.BatchReport, error)
	Reports() []prompt.BatchReport
	Reconfigure(...prompt.Option) error
	SetParallelism(int, int) error
	SetCores(int) error
	SetWorkers(int) error
	SetObserver(prompt.Observer)
	Rescale(int) error
	Owners() int
	Migrations() int
	Checkpoint() ([]byte, error)
	Close() error
}

// surfaceBatch fills one batch interval for any stream type.
func surfaceBatch(s streamAPI, batch, n int) []prompt.Tuple {
	start, interval := s.Now(), s.BatchInterval()
	keys := []string{"a", "b", "c", "d", "e", "f", "g"}
	tuples := make([]prompt.Tuple, 0, n)
	for i := 0; i < n; i++ {
		ts := start + prompt.Time(i)*interval/prompt.Time(n)
		tuples = append(tuples, prompt.NewTuple(ts, keys[(i+batch)%len(keys)], 1))
	}
	return tuples
}

// apiConstructors builds each public stream type through its options-first
// constructor with identical settings.
func apiConstructors(opts ...prompt.Option) map[string]func() (streamAPI, error) {
	q := prompt.WordCount(time.Minute, time.Second)
	return map[string]func() (streamAPI, error){
		"stream": func() (streamAPI, error) { return prompt.NewWithOptions(q, opts...) },
		"multi": func() (streamAPI, error) {
			return prompt.NewMultiWithOptions([]prompt.Query{q, prompt.PerBatch("count", nil, nil, nil)}, opts...)
		},
	}
}

// TestUnifiedSurface drives the shared surface table-style over both
// stream types: runtime reconfiguration applies, construction-time
// changes are rejected wholesale, replaying effective values is a no-op,
// and the deprecated setters still work.
func TestUnifiedSurface(t *testing.T) {
	for name, build := range apiConstructors(prompt.WithParallelism(16, 12)) {
		t.Run(name, func(t *testing.T) {
			s, err := build()
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if m, r := s.Parallelism(); m != 16 || r != 12 {
				t.Fatalf("Parallelism() = %d, %d; want 16, 12", m, r)
			}

			// Runtime options apply together.
			if err := s.Reconfigure(prompt.WithParallelism(4, 4), prompt.WithWorkers(2), prompt.WithCores(8)); err != nil {
				t.Fatalf("Reconfigure(runtime options): %v", err)
			}
			if m, r := s.Parallelism(); m != 4 || r != 4 {
				t.Fatalf("Parallelism() = %d, %d after Reconfigure; want 4, 4", m, r)
			}

			// Construction-time changes are rejected and nothing is applied.
			for i, bad := range []prompt.Option{
				prompt.WithScheme(prompt.SchemeHash),
				prompt.WithBatchInterval(2 * time.Second),
				prompt.WithStatsShards(3),
				prompt.WithValidation(true),
				prompt.WithColumnar(true),
				prompt.WithShards(2),
				prompt.WithElasticity(prompt.ElasticThreshold, 1, 8),
			} {
				if err := s.Reconfigure(bad, prompt.WithParallelism(9, 9)); !errors.Is(err, prompt.ErrBadConfig) {
					t.Fatalf("bad option %d: Reconfigure = %v, want ErrBadConfig", i, err)
				}
				if m, r := s.Parallelism(); m != 4 || r != 4 {
					t.Fatalf("bad option %d changed parallelism to %d, %d", i, m, r)
				}
			}

			// Replaying the effective construction values is a no-op.
			if err := s.Reconfigure(prompt.WithScheme(prompt.SchemePrompt), prompt.WithBatchInterval(time.Second), prompt.WithEarlyRelease(0.05)); err != nil {
				t.Fatalf("Reconfigure(replayed defaults): %v", err)
			}

			// Deprecated setters remain as wrappers.
			if err := s.SetParallelism(6, 6); err != nil {
				t.Fatal(err)
			}
			if m, r := s.Parallelism(); m != 6 || r != 6 {
				t.Fatalf("SetParallelism: Parallelism() = %d, %d; want 6, 6", m, r)
			}
			if err := s.SetWorkers(0); err != nil {
				t.Fatal(err)
			}
			if err := s.SetCores(6); err != nil {
				t.Fatal(err)
			}
			s.SetObserver(nil)

			// The elastic surface: rescaling applies at the batch boundary.
			if err := s.Rescale(0); !errors.Is(err, prompt.ErrBadConfig) {
				t.Fatalf("Rescale(0) = %v, want ErrBadConfig", err)
			}
			if err := s.Rescale(3); err != nil {
				t.Fatal(err)
			}
			if got := s.Owners(); got != 0 {
				t.Fatalf("Owners() = %d before the batch boundary, want 0", got)
			}
			if _, err := s.ProcessBatch(surfaceBatch(s, 0, 200)); err != nil {
				t.Fatal(err)
			}
			if got := s.Owners(); got != 3 {
				t.Fatalf("Owners() = %d after the batch boundary, want 3", got)
			}
			if s.Migrations() == 0 {
				t.Fatal("Rescale(3) applied no slot migrations")
			}
		})
	}
}

// TestElasticStreamIsAnswerNeutral: an elastic run whose policy actually
// scales mid-stream produces the same windowed answer as a static run of
// the same input.
func TestElasticStreamIsAnswerNeutral(t *testing.T) {
	q := prompt.WordCount(time.Minute, 20*time.Millisecond)
	base := []prompt.Option{
		prompt.WithBatchInterval(20 * time.Millisecond),
		prompt.WithParallelism(2, 2),
		prompt.WithCores(8),
	}
	elastic, err := prompt.NewWithOptions(q, append([]prompt.Option{prompt.WithElasticity(prompt.ElasticThreshold, 1, 8)}, base...)...)
	if err != nil {
		t.Fatal(err)
	}
	static, err := prompt.NewWithOptions(q, base...)
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 12; batch++ {
		n := 3000 + 3000*batch // ramp into overload so the policy acts
		if _, err := elastic.ProcessBatch(surfaceBatch(elastic, batch, n)); err != nil {
			t.Fatal(err)
		}
		if _, err := static.ProcessBatch(surfaceBatch(static, batch, n)); err != nil {
			t.Fatal(err)
		}
	}
	if elastic.Migrations() == 0 {
		t.Fatal("elastic policy never scaled; the test is vacuous")
	}
	got, want := elastic.Window(), static.Window()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("elastic window diverges from static run:\n got %v\nwant %v", got, want)
	}
}

// TestWithElasticityValidation: option misuse fails construction.
func TestWithElasticityValidation(t *testing.T) {
	q := prompt.WordCount(time.Minute, time.Second)
	bad := [][]prompt.Option{
		{prompt.WithElasticity("nosuch", 1, 8)},
		{prompt.WithElasticity(prompt.ElasticThreshold, 8, 2)},
		{prompt.WithElasticity(prompt.ElasticThreshold, -1, 2)},
		// Initial parallelism outside the declared bounds.
		{prompt.WithElasticity(prompt.ElasticThreshold, 1, 4), prompt.WithParallelism(8, 8)},
	}
	for i, opts := range bad {
		if _, err := prompt.NewWithOptions(q, opts...); !errors.Is(err, prompt.ErrBadConfig) {
			t.Errorf("bad elasticity %d: error = %v, want ErrBadConfig", i, err)
		}
	}
	for _, policy := range prompt.ElasticPolicies() {
		st, err := prompt.NewWithOptions(q, prompt.WithElasticity(policy, 1, 16))
		if err != nil {
			t.Fatalf("policy %q rejected: %v", policy, err)
		}
		st.Close()
		if parsed, err := prompt.ParseElasticPolicy(string(policy)); err != nil || parsed != policy {
			t.Errorf("policy %q does not round-trip: %q, %v", policy, parsed, err)
		}
	}
	if p, err := prompt.ParseElasticPolicy(""); err != nil || p != prompt.ElasticThreshold {
		t.Errorf("ParseElasticPolicy(\"\") = %q, %v; want threshold", p, err)
	}
}
