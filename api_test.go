package prompt_test

import (
	"errors"
	"testing"
	"time"

	"prompt"
)

func TestParseScheme(t *testing.T) {
	cases := []struct {
		in   string
		want prompt.Scheme
	}{
		{"", prompt.SchemePrompt},
		{"prompt", prompt.SchemePrompt},
		{"prompt-postsort", prompt.SchemePromptPostSort},
		{"hash", prompt.SchemeHash},
		{"time", prompt.SchemeTime},
		{"shuffle", prompt.SchemeShuffle},
		{"pk2", prompt.SchemePK2},
		{"pk5", prompt.SchemePK5},
		{"cam", prompt.SchemeCAM},
		{"ffd", prompt.SchemeFFD},
		{"fragmin", prompt.SchemeFragMin},
	}
	for _, c := range cases {
		got, err := prompt.ParseScheme(c.in)
		if err != nil {
			t.Fatalf("ParseScheme(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseScheme(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if _, err := prompt.ParseScheme("nosuch"); !errors.Is(err, prompt.ErrBadConfig) {
		t.Errorf("ParseScheme(nosuch) error = %v, want ErrBadConfig", err)
	}
}

func TestSchemesRoundTrip(t *testing.T) {
	schemes := prompt.Schemes()
	if len(schemes) != len(prompt.SchemeNames()) {
		t.Fatalf("Schemes/SchemeNames length mismatch: %d vs %d", len(schemes), len(prompt.SchemeNames()))
	}
	for _, s := range schemes {
		got, err := prompt.ParseScheme(string(s))
		if err != nil || got != s {
			t.Errorf("scheme %q does not round-trip: %q, %v", s, got, err)
		}
	}
	var zero prompt.Scheme
	if zero.String() != "prompt" {
		t.Errorf("zero Scheme.String() = %q, want prompt", zero.String())
	}
}

func TestNewWrapsErrBadConfig(t *testing.T) {
	bad := []prompt.Config{
		{Scheme: "nosuch"},
		{BatchInterval: -time.Second},
		{StatsShards: -1},
	}
	for _, cfg := range bad {
		if _, err := prompt.New(cfg, prompt.WordCount(time.Minute, time.Second)); !errors.Is(err, prompt.ErrBadConfig) {
			t.Errorf("New(%+v) error = %v, want ErrBadConfig", cfg, err)
		}
	}
	if _, err := prompt.NewMulti(prompt.Config{}); !errors.Is(err, prompt.ErrBadConfig) {
		t.Errorf("NewMulti with no queries: %v, want ErrBadConfig", err)
	}
}

func TestNewWithOptions(t *testing.T) {
	st, err := prompt.NewWithOptions(prompt.WordCount(time.Minute, time.Second),
		prompt.WithBatchInterval(500*time.Millisecond),
		prompt.WithParallelism(16, 12),
		prompt.WithScheme(prompt.SchemeHash),
		prompt.WithCores(16),
		prompt.WithWorkers(4),
		prompt.WithStatsShards(2),
		prompt.WithEarlyRelease(0.05),
		prompt.WithValidation(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	if st.SchemeName() != "hash" {
		t.Errorf("scheme = %q, want hash", st.SchemeName())
	}
	if got := st.BatchInterval(); got.Seconds() != 0.5 {
		t.Errorf("batch interval = %v, want 0.5s", got)
	}
}

func TestOptionsValidateEagerly(t *testing.T) {
	bad := []prompt.Option{
		prompt.WithBatchInterval(0),
		prompt.WithBatchInterval(-time.Second),
		prompt.WithParallelism(0, 4),
		prompt.WithParallelism(4, -1),
		prompt.WithScheme("nosuch"),
		prompt.WithCores(0),
		prompt.WithStatsShards(0),
		prompt.WithEarlyRelease(-0.1),
		prompt.WithEarlyRelease(0.6),
	}
	for i, opt := range bad {
		if _, err := prompt.NewWithOptions(prompt.WordCount(time.Minute, time.Second), opt); !errors.Is(err, prompt.ErrBadConfig) {
			t.Errorf("bad option %d: error = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestHasWindowAndErrNoWindow(t *testing.T) {
	windowed := testStream(t, prompt.SchemePrompt)
	if !windowed.HasWindow() {
		t.Error("sliding word count reports HasWindow() = false")
	}

	perBatch, err := prompt.New(prompt.Config{}, prompt.PerBatch("count", nil, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if perBatch.HasWindow() {
		t.Error("per-batch query reports HasWindow() = true")
	}
	if _, err := perBatch.TopK(3); !errors.Is(err, prompt.ErrNoWindow) {
		t.Errorf("TopK on windowless stream: %v, want ErrNoWindow", err)
	}
}

func TestMultiStreamHasWindowAndErrNoWindow(t *testing.T) {
	m, err := prompt.NewMulti(prompt.Config{},
		prompt.WordCount(time.Minute, time.Second),
		prompt.PerBatch("count", nil, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if has, err := m.HasWindow(0); err != nil || !has {
		t.Errorf("HasWindow(0) = %v, %v; want true", has, err)
	}
	if has, err := m.HasWindow(1); err != nil || has {
		t.Errorf("HasWindow(1) = %v, %v; want false", has, err)
	}
	if _, err := m.HasWindow(2); err == nil {
		t.Error("HasWindow(2) accepted out-of-range index")
	}
	if _, err := m.TopK(1, 3); !errors.Is(err, prompt.ErrNoWindow) {
		t.Errorf("TopK on windowless query: %v, want ErrNoWindow", err)
	}
}

func TestStreamSetWorkersMidRun(t *testing.T) {
	st := testStream(t, prompt.SchemePrompt)
	ref := testStream(t, prompt.SchemePrompt)
	for batch := 0; batch < 4; batch++ {
		if err := st.SetWorkers(batch % 3); err != nil { // 0, 1, 2, 0 workers
			t.Fatal(err)
		}
		tuples := apiTestBatch(st, batch)
		if _, err := st.ProcessBatch(tuples); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.ProcessBatch(apiTestBatch(ref, batch)); err != nil {
			t.Fatal(err)
		}
	}
	got, want := st.Window(), ref.Window()
	if len(got) != len(want) {
		t.Fatalf("window size %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %s = %v, want %v", k, got[k], v)
		}
	}
}

// apiTestBatch deterministically fills one batch interval of the stream.
func apiTestBatch(st *prompt.Stream, batch int) []prompt.Tuple {
	start := st.Now()
	keys := []string{"a", "b", "c", "d", "e"}
	tuples := make([]prompt.Tuple, 0, 200)
	for i := 0; i < 200; i++ {
		ts := start + prompt.Time(i)*st.BatchInterval()/200
		tuples = append(tuples, prompt.NewTuple(ts, keys[(i+batch)%len(keys)], 1))
	}
	return tuples
}
