package prompt_test

import (
	"errors"
	"strings"
	"testing"

	"prompt"
)

// TestSchemeRoundTrip: every registered scheme name must parse back to
// itself via ParseScheme, so the registry and the parser can never drift.
func TestSchemeRoundTrip(t *testing.T) {
	names := prompt.SchemeNames()
	if len(names) == 0 {
		t.Fatal("SchemeNames() is empty")
	}
	for _, name := range names {
		got, err := prompt.ParseScheme(name)
		if err != nil {
			t.Errorf("ParseScheme(%q) failed: %v", name, err)
			continue
		}
		if got.String() != name {
			t.Errorf("ParseScheme(%q) = %q, want the same name back", name, got)
		}
	}
	for i, s := range prompt.Schemes() {
		if s.String() != names[i] {
			t.Errorf("Schemes()[%d] = %q, want %q", i, s, names[i])
		}
	}
}

// TestParseSchemeUnknownListsAllNames: an unknown-scheme error must
// enumerate every registered name so users can self-serve the fix.
func TestParseSchemeUnknownListsAllNames(t *testing.T) {
	_, err := prompt.ParseScheme("no-such-scheme")
	if err == nil {
		t.Fatal("ParseScheme accepted an unknown name")
	}
	if !errors.Is(err, prompt.ErrBadConfig) {
		t.Errorf("error does not wrap ErrBadConfig: %v", err)
	}
	for _, name := range prompt.SchemeNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention registered scheme %q", err, name)
		}
	}
}

// FuzzParseScheme checks ParseScheme's contract on arbitrary input: it
// either returns a registered canonical scheme or an error wrapping
// ErrBadConfig — never both, never neither.
func FuzzParseScheme(f *testing.F) {
	for _, name := range prompt.SchemeNames() {
		f.Add(name)
	}
	f.Add("")
	f.Add("nosuch")
	f.Add("PROMPT")
	f.Add("prompt ")
	registered := make(map[string]bool)
	for _, name := range prompt.SchemeNames() {
		registered[name] = true
	}
	f.Fuzz(func(t *testing.T, name string) {
		s, err := prompt.ParseScheme(name)
		if err != nil {
			if !errors.Is(err, prompt.ErrBadConfig) {
				t.Errorf("ParseScheme(%q) error does not wrap ErrBadConfig: %v", name, err)
			}
			if s != "" {
				t.Errorf("ParseScheme(%q) returned both a scheme %q and an error", name, s)
			}
			return
		}
		if !registered[s.String()] {
			t.Errorf("ParseScheme(%q) = %q, which is not a registered scheme", name, s)
		}
		// Successful parses must be stable under a second round trip.
		again, err := prompt.ParseScheme(s.String())
		if err != nil || again != s {
			t.Errorf("round trip of %q failed: %q, %v", s, again, err)
		}
	})
}
