// Command benchjson records `go test -bench` output in the repository's
// benchmark-regression ledger (BENCH_hotpath.json) and compares the two
// recorded sections.
//
// It reads standard `go test -bench -benchmem` output on stdin, parses the
// Benchmark result lines, and stores them under the named section
// ("baseline" or "current") of the JSON file, preserving the other
// section. When both sections are present it prints a per-benchmark
// comparison (ns/op, B/op, allocs/op deltas) and the geometric-mean
// change, and with -max-allocs-regress / -max-ns-regress it exits
// nonzero if any benchmark's allocs/op or ns/op regressed by more than
// the given fraction.
//
// Usage:
//
//	go test -run='^$' -bench=BenchmarkHotPath -benchmem ./internal/engine/ |
//	    go run ./cmd/benchjson -file BENCH_hotpath.json -section current
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line of the ledger.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Section is one recorded benchmark run.
type Section struct {
	Captured string   `json:"captured"`
	Go       string   `json:"go,omitempty"`
	Note     string   `json:"note,omitempty"`
	Results  []Result `json:"results"`
}

// Ledger is the whole BENCH_hotpath.json file. Replacing the baseline
// pushes the previous one onto History, so superseded baselines (e.g.
// the row-ingestion numbers before the columnar hot path) stay in the
// file for archaeology without participating in the comparison.
type Ledger struct {
	Benchmark string     `json:"benchmark"`
	Baseline  *Section   `json:"baseline,omitempty"`
	Current   *Section   `json:"current,omitempty"`
	History   []*Section `json:"history,omitempty"`
}

func main() {
	file := flag.String("file", "BENCH_hotpath.json", "ledger file to update")
	section := flag.String("section", "current", `section to record: "baseline" or "current"`)
	benchmark := flag.String("benchmark", "BenchmarkHotPath", "benchmark family name recorded in the ledger")
	maxAllocsRegress := flag.Float64("max-allocs-regress", 0,
		"fail if any benchmark's allocs/op exceeds baseline by more than this fraction (0 disables)")
	maxNsRegress := flag.Float64("max-ns-regress", 0,
		"fail if any benchmark's ns/op exceeds baseline by more than this fraction (0 disables)")
	compareOnly := flag.Bool("compare", false, "skip recording; just compare the ledger's sections")
	note := flag.String("note", "", "free-form note stored with the recorded section")
	flag.Parse()

	ledger := &Ledger{Benchmark: *benchmark}
	if data, err := os.ReadFile(*file); err == nil {
		if err := json.Unmarshal(data, ledger); err != nil {
			fatalf("parsing %s: %v", *file, err)
		}
	}

	if !*compareOnly {
		results, err := parseBench(os.Stdin)
		if err != nil {
			fatalf("parsing bench output: %v", err)
		}
		if len(results) == 0 {
			fatalf("no Benchmark result lines found on stdin")
		}
		sec := &Section{
			Captured: time.Now().UTC().Format(time.RFC3339),
			Go:       runtime.Version(),
			Note:     *note,
			Results:  results,
		}
		switch *section {
		case "baseline":
			if ledger.Baseline != nil {
				ledger.History = append(ledger.History, ledger.Baseline)
			}
			ledger.Baseline = sec
		case "current":
			ledger.Current = sec
		default:
			fatalf("unknown section %q (want baseline or current)", *section)
		}
		out, err := json.MarshalIndent(ledger, "", "  ")
		if err != nil {
			fatalf("encoding ledger: %v", err)
		}
		if err := os.WriteFile(*file, append(out, '\n'), 0o644); err != nil {
			fatalf("writing %s: %v", *file, err)
		}
		fmt.Printf("recorded %d results under %q in %s\n", len(results), *section, *file)
	}

	if ledger.Baseline == nil || ledger.Current == nil {
		return
	}
	if !compare(ledger, *maxAllocsRegress, *maxNsRegress) {
		os.Exit(1)
	}
}

// parseBench extracts Benchmark result lines from `go test -bench`
// output. Repeated lines for the same benchmark (go test -count=N) are
// merged by taking the minimum of each metric: on a shared machine the
// minimum over repeats is the noise-robust estimate of the true cost —
// interference only ever adds time and allocations, never removes them.
func parseBench(f *os.File) ([]Result, error) {
	var results []Result
	index := make(map[string]int)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: trimProcSuffix(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				r.BytesPerOp = val
			case "allocs/op":
				r.AllocsPerOp = val
			}
		}
		if at, seen := index[r.Name]; seen {
			prev := &results[at]
			prev.NsPerOp = min(prev.NsPerOp, r.NsPerOp)
			prev.BytesPerOp = min(prev.BytesPerOp, r.BytesPerOp)
			prev.AllocsPerOp = min(prev.AllocsPerOp, r.AllocsPerOp)
		} else {
			index[r.Name] = len(results)
			results = append(results, r)
		}
	}
	return results, sc.Err()
}

// trimProcSuffix strips the trailing -<GOMAXPROCS> go test appends to
// benchmark names, so ledger entries match across machines.
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// compare prints the per-benchmark deltas between the ledger's sections
// and reports whether the allocation- and time-regression gates passed.
func compare(l *Ledger, maxAllocsRegress, maxNsRegress float64) bool {
	base := make(map[string]Result, len(l.Baseline.Results))
	for _, r := range l.Baseline.Results {
		base[r.Name] = r
	}
	fmt.Printf("\n%-60s %12s %12s %12s\n", "benchmark", "ns/op Δ", "B/op Δ", "allocs/op Δ")
	var nsRatios, allocRatios []float64
	ok := true
	for _, cur := range l.Current.Results {
		b, found := base[cur.Name]
		if !found {
			fmt.Printf("%-60s (no baseline)\n", cur.Name)
			continue
		}
		nsD := delta(b.NsPerOp, cur.NsPerOp)
		byD := delta(b.BytesPerOp, cur.BytesPerOp)
		alD := delta(b.AllocsPerOp, cur.AllocsPerOp)
		fmt.Printf("%-60s %+11.1f%% %+11.1f%% %+11.1f%%\n", cur.Name, nsD, byD, alD)
		if b.NsPerOp > 0 && cur.NsPerOp > 0 {
			nsRatios = append(nsRatios, cur.NsPerOp/b.NsPerOp)
		}
		if b.AllocsPerOp > 0 && cur.AllocsPerOp > 0 {
			allocRatios = append(allocRatios, cur.AllocsPerOp/b.AllocsPerOp)
		}
		if maxAllocsRegress > 0 && b.AllocsPerOp > 0 &&
			cur.AllocsPerOp > b.AllocsPerOp*(1+maxAllocsRegress) {
			fmt.Printf("  ^ ALLOCATION REGRESSION: %f > %f * %.2f\n",
				cur.AllocsPerOp, b.AllocsPerOp, 1+maxAllocsRegress)
			ok = false
		}
		if maxNsRegress > 0 && b.NsPerOp > 0 &&
			cur.NsPerOp > b.NsPerOp*(1+maxNsRegress) {
			fmt.Printf("  ^ TIME REGRESSION: %.0f ns/op > %.0f * %.2f\n",
				cur.NsPerOp, b.NsPerOp, 1+maxNsRegress)
			ok = false
		}
	}
	if len(nsRatios) > 0 {
		fmt.Printf("%-60s %+11.1f%% %12s %+11.1f%%\n", "geomean",
			(geomean(nsRatios)-1)*100, "", (geomean(allocRatios)-1)*100)
	}
	return ok
}

func delta(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

func geomean(ratios []float64) float64 {
	if len(ratios) == 0 {
		return 1
	}
	sum := 0.0
	for _, r := range ratios {
		sum += math.Log(r)
	}
	return math.Exp(sum / float64(len(ratios)))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
