// Command streamgen materializes a synthetic stream to stdout or a file as
// CSV (timestamp_us,key,value), for inspecting the dataset generators or
// feeding external tools:
//
//	streamgen -dataset tweets -rate 50000 -seconds 10 > tweets.csv
//	streamgen -dataset synd -z 1.5 -cardinality 100000 -o synd.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"prompt/internal/tuple"
	"prompt/internal/workload"
)

func main() {
	var (
		dataset     = flag.String("dataset", "tweets", "dataset generator: "+fmt.Sprint(workload.DatasetNames()))
		rate        = flag.Float64("rate", 10_000, "arrival rate (tuples/second)")
		seconds     = flag.Int("seconds", 5, "stream duration")
		z           = flag.Float64("z", 1.0, "Zipf exponent for synd")
		cardinality = flag.Int("cardinality", 0, "key universe size (0 = dataset default)")
		seed        = flag.Int64("seed", 1, "generator seed")
		out         = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	defer bw.Flush()

	src, err := workload.ByName(*dataset, workload.ConstantRate(*rate), *z,
		workload.DatasetDefaults{Cardinality: *cardinality, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	total := 0
	for s := 0; s < *seconds; s++ {
		start := tuple.Time(s) * tuple.Second
		ts, err := src.Slice(start, start+tuple.Second)
		if err != nil {
			fatal(err)
		}
		for i := range ts {
			bw.WriteString(strconv.FormatInt(int64(ts[i].TS), 10))
			bw.WriteByte(',')
			bw.WriteString(ts[i].Key)
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatFloat(ts[i].Val, 'g', -1, 64))
			bw.WriteByte('\n')
		}
		total += len(ts)
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "streamgen: wrote %d tuples (%s, %d s at %.0f/s)\n",
		total, *dataset, *seconds, *rate)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streamgen:", err)
	os.Exit(1)
}
