package main

// End-to-end cluster tests: real OS processes over unix sockets. The
// test binary re-execs itself as promptd (PROMPTD_ARGS), so each shard
// is a genuine separate process — under -race when the tests are.

import (
	"bytes"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"prompt"
	"prompt/internal/workload"
)

func TestMain(m *testing.M) {
	if args := os.Getenv("PROMPTD_ARGS"); args != "" {
		os.Exit(run(strings.Split(args, "\x1f"), os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// startShard launches one promptd shard process and waits until its
// socket accepts connections.
func startShard(t *testing.T, index int, addr, queries string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "PROMPTD_ARGS="+strings.Join([]string{
		"shard", "-listen", addr, "-index", string(rune('0' + index)), "-queries", queries,
	}, "\x1f"))
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
		_, _ = cmd.Process.Wait()
	})
	path := strings.TrimPrefix(addr, "unix:")
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := net.Dial("unix", path)
		if err == nil {
			c.Close()
			return cmd
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %d at %s never came up: %v", index, addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func shardAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "unix:" + filepath.Join(t.TempDir(), "shard.sock")
	}
	return addrs
}

// TestCoordVerifyLocalE2E is the CI smoke path: a coordinator against
// two shard processes runs 20 Zipf batches and -verify-local re-runs the
// workload single-process, requiring bit-identical reports and windows.
func TestCoordVerifyLocalE2E(t *testing.T) {
	addrs := shardAddrs(t, 2)
	startShard(t, 0, addrs[0], "wordcount,sum")
	startShard(t, 1, addrs[1], "wordcount,sum")

	var out, errOut bytes.Buffer
	code := run([]string{"coord",
		"-shards", strings.Join(addrs, ","),
		"-queries", "wordcount,sum",
		"-batches", "20",
		"-verify-local",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("coord exited %d:\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "bit-identical") {
		t.Errorf("verify-local did not confirm equivalence:\n%s", out.String())
	}
}

// TestCoordSurvivesShardKillE2E kills one shard process mid-run: the
// coordinator must redial, give up, fall back to local folds for that
// shard, and still finish with answers bit-identical to a single-process
// run.
func TestCoordSurvivesShardKillE2E(t *testing.T) {
	const batches, killAt = 20, 5
	addrs := shardAddrs(t, 2)
	startShard(t, 0, addrs[0], "wordcount")
	victim := startShard(t, 1, addrs[1], "wordcount")

	queries := []prompt.Query{prompt.WordCount(10*time.Second, time.Second)}
	base := prompt.Config{
		BatchInterval: time.Second,
		MapTasks:      4,
		ReduceTasks:   4,
		Validate:      true,
	}
	ccfg := base
	ccfg.Topology = prompt.Topology{
		Shards:          addrs,
		ExchangeTimeout: 2 * time.Second,
		Retry:           prompt.RetryPolicy{MaxAttempts: 2, Backoff: prompt.At(5 * time.Millisecond)},
	}
	m, err := prompt.NewMulti(ccfg, queries...)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	newSource := func() *workload.Source {
		ks, err := workload.NewZipfSampler("w", 400, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		return &workload.Source{Name: "zipf", Rate: workload.ConstantRate(2000), Keys: ks, Seed: 42}
	}
	src := newSource()
	pull := func(start, end prompt.Time) ([]prompt.Tuple, error) { return src.Slice(start, end) }
	for i := 0; i < batches; i++ {
		if i == killAt {
			if err := victim.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			_, _ = victim.Process.Wait()
		}
		if _, err := m.Run(pull, 1); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if down := m.ShardsDown(); down != 1 {
		t.Errorf("ShardsDown = %d, want 1", down)
	}

	solo, err := prompt.NewMulti(base, queries...)
	if err != nil {
		t.Fatal(err)
	}
	soloSrc := newSource()
	soloReps, err := solo.Run(func(s, e prompt.Time) ([]prompt.Tuple, error) { return soloSrc.Slice(s, e) }, batches)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scrubReports(m.Reports()), scrubReports(soloReps)) {
		t.Error("reports diverged from the single-process run after the shard kill")
	}
	clusterWin, err := m.Window(0)
	if err != nil {
		t.Fatal(err)
	}
	soloWin, err := solo.Window(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clusterWin, soloWin) {
		t.Error("window answers diverged from the single-process run after the shard kill")
	}
}

func TestBuildQueriesRejectsUnknown(t *testing.T) {
	if _, err := buildQueries("wordcount,nosuch"); err == nil {
		t.Error("unknown query name accepted")
	}
	if _, err := buildQueries(""); err == nil {
		t.Error("empty query list accepted")
	}
}

// TestCoordScaleScriptE2E scales a 2-shard cluster 1→2→1 mid-stream via
// -scale-script: the handoff images travel the unix sockets to real shard
// processes, and -verify-local still proves the answers bit-identical to
// a static single-process run.
func TestCoordScaleScriptE2E(t *testing.T) {
	addrs := shardAddrs(t, 2)
	startShard(t, 0, addrs[0], "wordcount,sum")
	startShard(t, 1, addrs[1], "wordcount,sum")

	var out, errOut bytes.Buffer
	code := run([]string{"coord",
		"-shards", strings.Join(addrs, ","),
		"-queries", "wordcount,sum",
		"-batches", "12",
		"-scale-script", "1:1,3:2,8:1",
		"-verify-local",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("coord exited %d:\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "bit-identical") {
		t.Errorf("verify-local did not confirm equivalence:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "elastic: 1 owners") {
		t.Errorf("run did not report the final owner count:\n%s", out.String())
	}
}

// TestCoordScaleSurvivesDonorKillE2E SIGKILLs the shard that is about to
// receive handoff stripes right before the rescale: the coordinator loses
// only the replica (the driver keeps authoritative state), marks the
// shard down, and the answers stay bit-identical to a static run.
func TestCoordScaleSurvivesDonorKillE2E(t *testing.T) {
	const batches, killAt = 12, 4
	addrs := shardAddrs(t, 2)
	startShard(t, 0, addrs[0], "wordcount")
	victim := startShard(t, 1, addrs[1], "wordcount")

	queries := []prompt.Query{prompt.WordCount(10*time.Second, time.Second)}
	base := []prompt.Option{
		prompt.WithParallelism(4, 4),
		prompt.WithValidation(true),
	}
	cluster := append(append([]prompt.Option(nil), base...), prompt.WithTopology(prompt.Topology{
		Shards:          addrs,
		ExchangeTimeout: 2 * time.Second,
		Retry:           prompt.RetryPolicy{MaxAttempts: 2, Backoff: prompt.At(5 * time.Millisecond)},
	}))
	m, err := prompt.NewMultiWithOptions(queries, cluster...)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	newSource := func() *workload.Source {
		ks, err := workload.NewZipfSampler("w", 400, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		return &workload.Source{Name: "zipf", Rate: workload.ConstantRate(2000), Keys: ks, Seed: 42}
	}
	src := newSource()
	pull := func(start, end prompt.Time) ([]prompt.Tuple, error) { return src.Slice(start, end) }
	for i := 0; i < batches; i++ {
		if i == killAt {
			// Kill the stripe recipient, then immediately request the 1→2
			// rescale so the handoff replication hits a dead socket.
			if err := victim.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			_, _ = victim.Process.Wait()
			if err := m.Rescale(2); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := m.Run(pull, 1); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if m.Migrations() == 0 {
		t.Fatal("no migrations happened; the test is vacuous")
	}
	if down := m.ShardsDown(); down != 1 {
		t.Errorf("ShardsDown = %d, want 1", down)
	}

	solo, err := prompt.NewMultiWithOptions(queries, base...)
	if err != nil {
		t.Fatal(err)
	}
	soloSrc := newSource()
	soloReps, err := solo.Run(func(s, e prompt.Time) ([]prompt.Tuple, error) { return soloSrc.Slice(s, e) }, batches)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scrubReports(m.Reports()), scrubReports(soloReps)) {
		t.Error("reports diverged from the single-process run after the donor kill")
	}
	clusterWin, err := m.Window(0)
	if err != nil {
		t.Fatal(err)
	}
	soloWin, err := solo.Window(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clusterWin, soloWin) {
		t.Error("window answers diverged from the single-process run after the donor kill")
	}
}

func TestParseScaleScript(t *testing.T) {
	got, err := parseScaleScript("1:2, 3:1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, map[int]int{1: 2, 3: 1}) {
		t.Errorf("parseScaleScript = %v", got)
	}
	if m, err := parseScaleScript(""); err != nil || m != nil {
		t.Errorf("empty script: %v, %v", m, err)
	}
	for _, bad := range []string{"x", "1:", "1:0", "-1:2"} {
		if _, err := parseScaleScript(bad); err == nil {
			t.Errorf("accepted bad script %q", bad)
		}
	}
}
