// Command promptd runs the engine's distributed runtime as real
// processes: shard servers that execute the data-plane folds, and a
// coordinator that drives the full micro-batch control plane and
// scatters Map/Reduce work to them over unix or TCP sockets.
//
//	promptd shard -listen unix:/tmp/prompt-0.sock -index 0 -queries wordcount,sum
//	promptd shard -listen unix:/tmp/prompt-1.sock -index 1 -queries wordcount,sum
//	promptd coord -shards unix:/tmp/prompt-0.sock,unix:/tmp/prompt-1.sock \
//	    -queries wordcount,sum -scheme prompt -batches 20 -verify-local
//
// Distribution never changes answers: the coordinator keeps every
// simulated concern (partitioning, scheduling, fault injection, window
// state) on its own driver, so -verify-local can re-run the workload
// single-process and require bit-identical reports and windows.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"time"

	"prompt"
	"prompt/internal/dist"
	"prompt/internal/transport"
	"prompt/internal/workload"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run dispatches the subcommands; it is main with injectable streams so
// the e2e tests can drive the exact CLI surface in-process.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "usage: promptd <shard|coord> [flags]")
		return 2
	}
	var err error
	switch args[0] {
	case "shard":
		err = runShard(args[1:], stdout, stderr)
	case "coord":
		err = runCoord(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "promptd: unknown subcommand %q (want shard or coord)\n", args[0])
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "promptd: %v\n", err)
		return 1
	}
	return 0
}

// buildQueries resolves a comma-separated query list against the small
// registry both sides of the wire share. Shards cannot receive query
// functions over the wire, so coordinator and shard processes must be
// started with the same -queries value; the Hello handshake verifies it.
func buildQueries(names string) ([]prompt.Query, error) {
	var out []prompt.Query
	for _, name := range strings.Split(names, ",") {
		switch strings.TrimSpace(name) {
		case "wordcount":
			out = append(out, prompt.WordCount(10*time.Second, time.Second))
		case "sum":
			out = append(out, prompt.SlidingSum("sum", 5*time.Second, time.Second))
		case "":
		default:
			return nil, fmt.Errorf("unknown query %q (registry: wordcount, sum)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no queries named")
	}
	return out, nil
}

// runShard serves one shard runtime until SIGINT/SIGTERM.
func runShard(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("promptd shard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen  = fs.String("listen", "", "address to serve on (unix:/path or host:port); required")
		index   = fs.Int("index", 0, "this shard's index in the coordinator's topology")
		queries = fs.String("queries", "wordcount", "comma-separated query registry names; must match the coordinator")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listen == "" {
		return fmt.Errorf("shard: -listen is required")
	}
	qs, err := buildQueries(*queries)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}

	network, addr := transport.Network(*listen)
	if network == "unix" {
		// A stale socket file from a killed predecessor would fail the bind.
		_ = os.Remove(addr)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	fmt.Fprintf(stdout, "promptd shard %d listening on %s:%s\n", *index, network, addr)

	sh := dist.NewShard(*index, qs)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var conns []net.Conn

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigc
		ln.Close()
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
	}()

	for {
		c, err := ln.Accept()
		if err != nil {
			break // listener closed by the signal handler
		}
		mu.Lock()
		conns = append(conns, c)
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := transport.Serve(c, sh); err != nil {
				fmt.Fprintf(stderr, "promptd shard %d: %v\n", *index, err)
			}
		}()
	}
	wg.Wait()
	fmt.Fprintf(stdout, "promptd shard %d stopped\n", *index)
	return nil
}

// parseScaleScript parses a "batch:owners,batch:owners" script ("2:2,6:1"
// rescales to 2 owners after batch 2 commits and back to 1 after batch 6).
func parseScaleScript(s string) (map[int]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[int]int)
	for _, ev := range strings.Split(s, ",") {
		var batch, owners int
		if _, err := fmt.Sscanf(strings.TrimSpace(ev), "%d:%d", &batch, &owners); err != nil {
			return nil, fmt.Errorf("scale-script event %q: want batch:owners", ev)
		}
		if batch < 0 || owners < 1 {
			return nil, fmt.Errorf("scale-script event %q: batch must be >= 0 and owners >= 1", ev)
		}
		out[batch] = owners
	}
	return out, nil
}

// coordReports runs the workload on a stream — applying any scripted
// rescales after their batch commits — and returns its reports and
// per-query window answers.
func coordReports(m *prompt.MultiStream, src *workload.Source, batches int, scale map[int]int) ([]prompt.BatchReport, []map[string]float64, error) {
	pull := func(start, end prompt.Time) ([]prompt.Tuple, error) {
		return src.Slice(start, end)
	}
	var reps []prompt.BatchReport
	if len(scale) == 0 {
		// One Run call for the whole workload: with -pipeline > 1 the
		// driver overlaps consecutive batches instead of draining the
		// pipeline at every call boundary.
		r, err := m.Run(pull, batches)
		if err != nil {
			return nil, nil, err
		}
		reps = r
	} else {
		for b := 0; b < batches; b++ {
			r, err := m.Run(pull, 1)
			if err != nil {
				return nil, nil, err
			}
			reps = append(reps, r...)
			if owners, ok := scale[b]; ok {
				if err := m.Rescale(owners); err != nil {
					return nil, nil, fmt.Errorf("rescale to %d after batch %d: %w", owners, b, err)
				}
			}
		}
	}
	wins := make([]map[string]float64, len(m.Queries()))
	for i := range wins {
		w, err := m.Window(i)
		if err != nil {
			return nil, nil, err
		}
		wins[i] = w
	}
	return reps, wins, nil
}

// scrubReports zeroes the wall-clock-measured fields, leaving the
// simulated ones that must be identical wherever the folds ran.
func scrubReports(reps []prompt.BatchReport) []prompt.BatchReport {
	out := append([]prompt.BatchReport(nil), reps...)
	for i := range out {
		out[i].PartitionTime, out[i].PartitionOverflow = 0, 0
		out[i].ProcessingTime, out[i].QueueWait, out[i].Latency = 0, 0, 0
		out[i].W, out[i].Stable = 0, false
	}
	return out
}

// runCoord drives a batched Zipf workload through a shard cluster and
// prints the merged run summary.
func runCoord(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("promptd coord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		shards      = fs.String("shards", "", "comma-separated shard addresses in index order; required")
		queries     = fs.String("queries", "wordcount", "comma-separated query registry names; must match the shards")
		schemeName  = fs.String("scheme", "prompt", "partitioning scheme")
		batches     = fs.Int("batches", 20, "number of batches to run")
		rate        = fs.Float64("rate", 2000, "arrival rate (tuples/s)")
		keys        = fs.Int("keys", 400, "key universe size")
		zipfZ       = fs.Float64("z", 1.0, "Zipf exponent")
		seed        = fs.Int64("seed", 42, "workload seed")
		intervalMS  = fs.Int("interval-ms", 1000, "batch interval (milliseconds)")
		mapTasks    = fs.Int("p", 4, "map tasks (blocks)")
		reduceTasks = fs.Int("r", 4, "reduce tasks (buckets)")
		workers     = fs.Int("workers", 0, "driver worker goroutines (0 = single-goroutine)")
		pipeline    = fs.Int("pipeline", 1, "inter-batch pipeline depth: overlap up to N consecutive batches (answers unchanged)")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-exchange deadline")
		scaleScript = fs.String("scale-script", "", "scripted rescales as batch:owners pairs (\"2:2,6:1\"); applied after the named batch commits")
		verifyLocal = fs.Bool("verify-local", false, "re-run single-process and require bit-identical reports and windows")
		jsonOut     = fs.Bool("json", false, "print the run summary as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards == "" {
		return fmt.Errorf("coord: -shards is required")
	}
	qs, err := buildQueries(*queries)
	if err != nil {
		return fmt.Errorf("coord: %w", err)
	}
	scale, err := parseScaleScript(*scaleScript)
	if err != nil {
		return fmt.Errorf("coord: %w", err)
	}
	newSource := func() (*workload.Source, error) {
		ks, err := workload.NewZipfSampler("w", *keys, *zipfZ)
		if err != nil {
			return nil, err
		}
		return &workload.Source{Name: "zipf", Rate: workload.ConstantRate(*rate), Keys: ks, Seed: *seed}, nil
	}

	shardList := strings.Split(*shards, ",")
	base := []prompt.Option{
		prompt.WithBatchInterval(time.Duration(*intervalMS) * time.Millisecond),
		prompt.WithParallelism(*mapTasks, *reduceTasks),
		prompt.WithScheme(prompt.Scheme(*schemeName)),
		prompt.WithValidation(true),
	}
	if *workers != 0 {
		base = append(base, prompt.WithWorkers(*workers))
	}
	cluster := append(append([]prompt.Option(nil), base...), prompt.WithPipelineDepth(*pipeline))
	cluster = append(cluster, prompt.WithTopology(prompt.Topology{
		Shards:          shardList,
		ExchangeTimeout: *timeout,
		// Generous dial budget (~3 s of backoff) so a coordinator started
		// moments before its shards converges instead of failing fast.
		Retry: prompt.RetryPolicy{MaxAttempts: 8, Backoff: prompt.At(25 * time.Millisecond)},
	}))

	m, err := prompt.NewMultiWithOptions(qs, cluster...)
	if err != nil {
		return err
	}
	defer m.Close()
	src, err := newSource()
	if err != nil {
		return err
	}
	runStart := time.Now()
	reps, wins, err := coordReports(m, src, *batches, scale)
	if err != nil {
		return err
	}
	wall := time.Since(runStart)

	sum := prompt.Summarize(reps)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(stdout, "cluster run: %d batches, %d tuples, %d queries over %d shards (%d down), backpressure factor %.3f\n",
			sum.Batches, sum.Tuples, len(qs), len(shardList), m.ShardsDown(), m.BackpressureFactor())
		fmt.Fprintf(stdout, "throughput %.0f tuples/s, mean W %.3f, unstable %d\n",
			sum.Throughput, sum.MeanW, sum.UnstableCount)
		if wall > 0 && len(reps) > 0 {
			fmt.Fprintf(stdout, "pipeline: depth %d, wall %v, sustained %.1f batches/s\n",
				*pipeline, wall.Round(time.Millisecond), float64(len(reps))/wall.Seconds())
		}
		if len(scale) > 0 {
			fmt.Fprintf(stdout, "elastic: %d owners after %d slot migrations\n", m.Owners(), m.Migrations())
		}
	}

	if *verifyLocal {
		// The static reference ignores the scale script: rescaling must not
		// change a single answer, so the comparison holds regardless.
		solo, err := prompt.NewMultiWithOptions(qs, base...)
		if err != nil {
			return err
		}
		soloSrc, err := newSource()
		if err != nil {
			return err
		}
		soloReps, soloWins, err := coordReports(solo, soloSrc, *batches, nil)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(scrubReports(reps), scrubReports(soloReps)) {
			return fmt.Errorf("verify-local: cluster reports diverge from the single-process run")
		}
		if !reflect.DeepEqual(wins, soloWins) {
			return fmt.Errorf("verify-local: cluster window answers diverge from the single-process run")
		}
		fmt.Fprintln(stdout, "verify-local: cluster output is bit-identical to the single-process run")
	}
	return nil
}
