// Command promptsim runs a single micro-batch streaming simulation with a
// chosen partitioning scheme and prints the per-batch reports — a quick
// way to watch stability, queueing, and partitioning quality evolve:
//
//	promptsim -scheme prompt -dataset tweets -rate 200000 -batches 20
//	promptsim -scheme time -rate-shape sin -amplitude 0.6
//	promptsim -scheme prompt -elastic -rate-shape ramp -rate 50000 -rate-to 400000
//	promptsim -scheme prompt -faults "kill@3:cores=2,after=40ms;lose@7:fails=1"
//	promptsim -scheme prompt -fault-seed 5
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"
	"time"

	"prompt/internal/cluster"
	"prompt/internal/core"
	"prompt/internal/elastic"
	"prompt/internal/engine"
	"prompt/internal/experiment"
	"prompt/internal/fault"
	"prompt/internal/metrics"
	"prompt/internal/tuple"
	"prompt/internal/window"
	"prompt/internal/workload"
)

func main() {
	var (
		schemeName  = flag.String("scheme", "prompt", "partitioning scheme: prompt|prompt-postsort|time|shuffle|hash|pk2|pk5|cam|ffd|fragmin")
		dataset     = flag.String("dataset", "tweets", "dataset generator")
		rate        = flag.Float64("rate", 200_000, "base arrival rate (tuples/s)")
		rateTo      = flag.Float64("rate-to", 0, "final rate for -rate-shape ramp (default 2x base)")
		rateShape   = flag.String("rate-shape", "const", "rate shape: const|sin|ramp")
		amplitude   = flag.Float64("amplitude", 0.5, "sinusoidal amplitude as a fraction of the base rate")
		z           = flag.Float64("z", 1.0, "Zipf exponent for synd")
		cardinality = flag.Int("cardinality", 50_000, "key universe size")
		batches     = flag.Int("batches", 20, "number of batches")
		intervalMs  = flag.Int("interval-ms", 1000, "batch interval (milliseconds)")
		mapTasks    = flag.Int("p", 8, "map tasks (blocks)")
		reduceTasks = flag.Int("r", 8, "reduce tasks (buckets)")
		cores       = flag.Int("cores", 8, "simulated cores")
		workers     = flag.Int("workers", 0, "real worker goroutines (0 = single-goroutine driver, -1 = GOMAXPROCS)")
		pipeline    = flag.Int("pipeline", 1, "inter-batch pipeline depth: overlap up to N consecutive batches (answers unchanged, wall-clock only)")
		elasticOn   = flag.Bool("elastic", false, "enable the auto-scale controller (Algorithm 4)")
		elasticPol  = flag.String("elastic-policy", "threshold", "auto-scale policy with -elastic: threshold|predictive|cost")
		seed        = flag.Int64("seed", 1, "workload seed")
		input       = flag.String("input", "", "replay a recorded CSV trace (streamgen format) instead of generating")
		csvOut      = flag.String("csv", "", "also write the per-batch reports as CSV to this file")
		trace       = flag.Bool("trace", false, "attach the per-stage lifecycle collector and print stage timings")
		traceJSON   = flag.String("trace-json", "", "with -trace, also write the collector snapshot as JSON to this file")
		faults      = flag.String("faults", "", "fault plan script, e.g. \"kill@3:cores=2,after=40ms;straggle@5:factor=8;lose@7:fails=1\"")
		faultSeed   = flag.Int64("fault-seed", 0, "generate a random fault plan from this seed (ignored with -faults)")
		jitterMS    = flag.Int("jitter-ms", 0, "delay arrivals by up to this many milliseconds (out-of-order delivery)")
		maxDelayMS  = flag.Int("max-delay-ms", 0, "reorder-buffer delay bound in milliseconds; arrivals later than this are dropped")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file at exit (pprof format)")
	)
	flag.Parse()

	// Profiles are written on a clean exit only; a fatal error abandons
	// them, matching the go test -cpuprofile contract.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote CPU profile to %s\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		defer func() {
			runtime.GC() // materialize the retained heap before snapshotting
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote heap profile to %s\n", *memprofile)
		}()
	}

	interval := tuple.Time(*intervalMs) * tuple.Millisecond
	horizon := tuple.Time(*batches) * interval

	var shape workload.RateShape
	switch *rateShape {
	case "const":
		shape = workload.ConstantRate(*rate)
	case "sin":
		shape = workload.SinusoidalRate{Base: *rate, Amplitude: *amplitude * *rate, Period: 8 * interval}
	case "ramp":
		to := *rateTo
		if to == 0 {
			to = 2 * *rate
		}
		shape = workload.RampRate{From: *rate, To: to, Start: 0, End: horizon}
	default:
		fatal(fmt.Errorf("unknown rate shape %q", *rateShape))
	}

	var src workload.Stream
	srcName := *dataset
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		trace, err := workload.ReadTrace(*input, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if span := int(trace.Span() / interval); *batches > span && span > 0 {
			*batches = span
		}
		src = trace
		srcName = "trace:" + *input
	} else {
		gen, err := workload.ByName(*dataset, shape, *z,
			workload.DatasetDefaults{Cardinality: *cardinality, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		src = gen
	}

	scheme, err := core.ByName(*schemeName)
	if err != nil {
		fatal(err)
	}

	params := experiment.Default()
	cfg := engine.Config{
		BatchInterval: interval,
		MapTasks:      *mapTasks,
		ReduceTasks:   *reduceTasks,
		Cores:         *cores,
		Workers:       *workers,
		PipelineDepth: *pipeline,
		Cost:          params.Cost,
	}
	cfg = scheme.Apply(cfg)
	var plan *fault.Plan
	switch {
	case *faults != "":
		p, err := fault.ParsePlan(*faults)
		if err != nil {
			fatal(err)
		}
		plan = p
	case *faultSeed != 0:
		plan = fault.RandomPlan(*faultSeed, *batches, 4)
		fmt.Printf("fault plan (seed %d): %s\n", *faultSeed, plan)
	}
	cfg.Faults = plan
	var col *metrics.Collector
	if *trace {
		col = metrics.NewCollector()
		cfg.Observer = col
	}
	eng, err := engine.New(cfg, engine.Query{Name: "wordcount", Map: engine.CountMap, Reduce: window.Sum})
	if err != nil {
		fatal(err)
	}

	reordered := *jitterMS > 0 || *maxDelayMS > 0
	var reports []engine.BatchReport
	runStart := time.Now()
	switch {
	case reordered && *elasticOn:
		fatal(fmt.Errorf("-jitter-ms/-max-delay-ms cannot be combined with -elastic"))
	case *pipeline > 1 && (reordered || *elasticOn):
		// Both modes consume per-batch feedback (the reorder horizon, the
		// controller's decision) before admitting the next batch, so they
		// run one batch at a time by construction.
		fatal(fmt.Errorf("-pipeline > 1 cannot be combined with -elastic or -jitter-ms/-max-delay-ms"))
	case reordered:
		jit, err := workload.NewJittered(src, tuple.Time(*jitterMS)*tuple.Millisecond, *seed+1)
		if err != nil {
			fatal(err)
		}
		reord, err := engine.NewReorderer(tuple.Time(*maxDelayMS) * tuple.Millisecond)
		if err != nil {
			fatal(err)
		}
		reports, err = eng.RunReordered(jit, reord, *batches)
		if err != nil {
			fatal(err)
		}
	case *elasticOn:
		var ctrl elastic.Policy
		var err error
		switch *elasticPol {
		case "threshold":
			ctrl, err = elastic.NewController(elastic.DefaultConfig(), *mapTasks, *reduceTasks)
		case "predictive":
			ctrl, err = elastic.NewPredictive(elastic.DefaultConfig(), *mapTasks, *reduceTasks)
		case "cost":
			ctrl, err = elastic.NewCostAware(elastic.DefaultConfig(), cfg.Cost, cfg.BatchInterval, *mapTasks, *reduceTasks)
		default:
			err = fmt.Errorf("unknown -elastic-policy %q (threshold|predictive|cost)", *elasticPol)
		}
		if err != nil {
			fatal(err)
		}
		pool, err := cluster.NewExecutorPool(*cores*4, 2, (*cores+1)/2)
		if err != nil {
			fatal(err)
		}
		driver, err := core.NewElasticDriver(eng, ctrl, pool)
		if err != nil {
			fatal(err)
		}
		reports, err = driver.RunBatches(src, *batches)
		if err != nil {
			fatal(err)
		}
	default:
		reports, err = eng.RunBatches(src, *batches)
		if err != nil {
			fatal(err)
		}
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "scheme=%s dataset=%s interval=%v\n", scheme.Name, srcName, interval)
	header := "batch\ttuples\tkeys\tproc(ms)\twait(ms)\tW\tp\tr\tcores\tBSI\tBCI\tKSR\tstable"
	if reordered {
		header += "\tdrops"
	}
	if plan != nil {
		header += "\tretry\trecov(ms)"
	}
	fmt.Fprintln(tw, header)
	for _, r := range reports {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f\t%.1f\t%.2f\t%d\t%d\t%d\t%.0f\t%.0f\t%.3f\t%v",
			r.Index, r.Tuples, r.Keys,
			float64(r.ProcessingTime)/1000, float64(r.QueueWait)/1000, r.W,
			r.MapTasks, r.ReduceTasks, r.Cores,
			r.Quality.BSI, r.Quality.BCI, r.Quality.KSR, r.Stable)
		if reordered {
			fmt.Fprintf(tw, "\t%d", r.TuplesDropped)
		}
		if plan != nil {
			fmt.Fprintf(tw, "\t%d\t%.1f", r.TaskRetries, float64(r.RecoveryTime)/1000)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	s := engine.Summarize(reports)
	fmt.Printf("\nsummary: %d batches, %d tuples, throughput %.0f/s, mean proc %v, max latency %v, unstable %d\n",
		s.Batches, s.Tuples, s.Throughput, s.MeanProcessing, s.MaxLatency, s.UnstableCount)
	if wall := time.Since(runStart); wall > 0 && len(reports) > 0 {
		fmt.Printf("pipeline: depth %d, wall %v, sustained %.1f batches/s\n",
			*pipeline, wall.Round(time.Millisecond), float64(len(reports))/wall.Seconds())
	}
	if reordered {
		fmt.Printf("reorder: %d tuples dropped beyond the %dms delay bound\n", s.TuplesDropped, *maxDelayMS)
	}
	if plan != nil {
		var retries, recoveries, coresLost int
		var recTime tuple.Time
		for _, r := range reports {
			retries += r.TaskRetries
			if r.RecoveryAttempts > 0 {
				recoveries++
			}
			recTime += r.RecoveryTime
			coresLost = r.CoresLost
		}
		fmt.Printf("faults: %d task retries, %d batch outputs recovered (%v simulated recovery), %d cores still down\n",
			retries, recoveries, recTime, coresLost)
	}

	if col != nil {
		fmt.Println("\nper-stage lifecycle timings (wall = host time, sim = virtual time):")
		tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "stage\tbatches\twall min\twall mean\twall max\tsim min\tsim mean\tsim max")
		for _, st := range col.Snapshot() {
			fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%v\t%v\t%v\t%v\n",
				st.Stage, st.Count, st.WallMin, st.WallMean, st.WallMax,
				st.SimMin, st.SimMean, st.SimMax)
		}
		tw.Flush()
		if *traceJSON != "" {
			f, err := os.Create(*traceJSON)
			if err != nil {
				fatal(err)
			}
			if err := col.WriteJSON(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote per-stage trace JSON to %s\n", *traceJSON)
		}
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		if err := engine.WriteReportsCSV(f, reports); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote per-batch CSV to %s\n", *csvOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "promptsim:", err)
	os.Exit(1)
}
