package main

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func smallParams() params {
	return params{
		Seconds: 4, Rate: 1500, Keys: 120, WindowSec: 2, Seed: 7,
		Generators: []string{"zipf0.8", "hotset", "burst"},
	}
}

// TestRunDeterministic pins the acceptance contract: the leaderboard —
// every error, footprint, and rank — is identical across runs of the
// same seed once the measured ns/op is masked out.
func TestRunDeterministic(t *testing.T) {
	a, err := run(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := run(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		a.Rows[i].NsPerOp, b.Rows[i].NsPerOp = 0, 0
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced two different leaderboards:\n%+v\n%+v", a, b)
	}
}

// TestRunCoversSweep checks the leaderboard shape: every selected
// generator ranks every operator exactly once, ranks are a permutation of
// 1..n, and the overall standing covers every operator.
func TestRunCoversSweep(t *testing.T) {
	p := smallParams()
	res, err := run(p)
	if err != nil {
		t.Fatal(err)
	}
	perGen := make(map[string]map[int]string)
	for _, r := range res.Rows {
		if perGen[r.Generator] == nil {
			perGen[r.Generator] = make(map[int]string)
		}
		if prev, dup := perGen[r.Generator][r.Rank]; dup {
			t.Errorf("%s: rank %d assigned to both %s and %s", r.Generator, r.Rank, prev, r.Operator)
		}
		perGen[r.Generator][r.Rank] = r.Operator
		if r.Error < 0 || r.Error > 1.5 {
			t.Errorf("%s/%s: implausible error %v", r.Generator, r.Operator, r.Error)
		}
		if r.Bytes <= 0 {
			t.Errorf("%s/%s: footprint %d", r.Generator, r.Operator, r.Bytes)
		}
	}
	if len(perGen) != len(p.Generators) {
		t.Fatalf("rows cover %d generators, want %d", len(perGen), len(p.Generators))
	}
	ops := len(res.Rows) / len(p.Generators)
	if ops < 5 {
		t.Fatalf("leaderboard ranks %d operators, want >= 5", ops)
	}
	for gen, ranks := range perGen {
		for r := 1; r <= ops; r++ {
			if _, ok := ranks[r]; !ok {
				t.Errorf("%s: rank %d missing", gen, r)
			}
		}
	}
	if len(res.Overall) != ops {
		t.Errorf("overall standing has %d operators, want %d", len(res.Overall), ops)
	}
}

// TestRendering smoke-tests the three output forms.
func TestRendering(t *testing.T) {
	p := smallParams()
	p.Generators = []string{"zipf2.0"}
	p.Seconds = 2
	res, err := run(p)
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := writeCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != len(res.Rows)+1 {
		t.Errorf("csv has %d lines, want %d", lines, len(res.Rows)+1)
	}
	var bench bytes.Buffer
	if err := writeBench(&bench, res); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(bench.String()), "\n") {
		if !strings.HasPrefix(line, "BenchmarkSampleBench/") ||
			!strings.Contains(line, "ns/op") || !strings.Contains(line, "allocs/op") {
			t.Errorf("bad bench line: %q", line)
		}
	}
}

// TestUnknownGenerator pins the error path.
func TestUnknownGenerator(t *testing.T) {
	p := smallParams()
	p.Generators = []string{"nope"}
	if _, err := run(p); err == nil || !strings.Contains(err.Error(), "unknown generator") {
		t.Fatalf("run with unknown generator: %v", err)
	}
}
