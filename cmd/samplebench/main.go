// Command samplebench ranks the approximate operators (Count-Min,
// Space-Saving, HyperLogLog, and the reservoir/chain/priority window
// samplers) against the exact engine answer over the synthetic workload
// generators, in the style of Gáspár et al.'s sampling-algorithm
// benchmarking framework: every (generator, operator) pair runs the same
// seeded stream through the real engine with the approximate tier
// enabled, and the leaderboard scores accuracy (operator-specific error
// vs. the exact window of the very same run), memory (summary footprint),
// and speed (wall-clock ns per tuple).
//
// Accuracy and memory are deterministic for a seed, so the ranking —
// error ascending, then bytes, then name — is reproducible anywhere;
// ns/op is measured and reported but deliberately excluded from the rank
// order.
//
//	samplebench -generators zipf0.8,hotset,burst -format json
//	samplebench -seconds 4 -format csv -o leaderboard.csv
//
// With -bench the rows are printed as `go test -bench`-style result
// lines so the existing benchjson ledger can record and gate them:
// ns/op is the measured per-tuple cost, B/op the summary footprint, and
// allocs/op the accuracy error in parts per million — the latter two are
// deterministic, so a ledger gate on allocs/op is an accuracy gate.
//
//	samplebench -bench | benchjson -file BENCH_samplebench.json \
//	    -benchmark SampleBench -section current -max-allocs-regress 0.05
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"prompt/internal/approx"
	"prompt/internal/engine"
	"prompt/internal/tuple"
	"prompt/internal/window"
	"prompt/internal/workload"
)

// params configures one leaderboard run.
type params struct {
	Seconds    int
	Rate       float64
	Keys       int
	WindowSec  int
	Seed       int64
	Generators []string
}

// generatorNames is the full sweep in canonical order: two points of the
// Zipf z-sweep, an adversarial hot set, a cardinality drift, and a rate
// burst.
var generatorNames = []string{"zipf0.8", "zipf2.0", "hotset", "drift", "burst"}

// Row is one (generator, operator) measurement.
type Row struct {
	Generator string `json:"generator"`
	Operator  string `json:"operator"`
	// Error is the operator-specific accuracy error against the exact
	// window of the same run: mean relative point-query error for
	// countmin, 1 − recall@10 for spacesaving and the samplers, relative
	// distinct-count error for hll. Deterministic for a seed.
	Error float64 `json:"error"`
	// Bytes is the summary's memory footprint after the run.
	Bytes int `json:"bytes"`
	// NsPerOp is measured wall-clock time per input tuple; informational
	// only (not part of the ranking).
	NsPerOp float64 `json:"ns_per_op"`
	// Rank is the operator's position within its generator, by error then
	// bytes then name.
	Rank int `json:"rank"`
}

// Overall is one operator's aggregate standing across all generators.
type Overall struct {
	Operator  string  `json:"operator"`
	MeanError float64 `json:"mean_error"`
	MeanBytes float64 `json:"mean_bytes"`
	Rank      int     `json:"rank"`
}

// Output is the leaderboard document.
type Output struct {
	Seed       int64     `json:"seed"`
	Seconds    int       `json:"seconds"`
	Rate       float64   `json:"rate"`
	Keys       int       `json:"keys"`
	WindowSec  int       `json:"window_sec"`
	Generators []string  `json:"generators"`
	Rows       []Row     `json:"rows"`
	Overall    []Overall `json:"overall"`
}

func main() {
	var (
		seconds = flag.Int("seconds", 8, "stream length in one-second batches")
		rate    = flag.Float64("rate", 4000, "arrival rate (tuples/second)")
		keys    = flag.Int("keys", 400, "key universe size")
		winSec  = flag.Int("window", 4, "sliding window length in seconds (slide 1s)")
		seed    = flag.Int64("seed", 1, "workload and hash seed")
		gens    = flag.String("generators", strings.Join(generatorNames, ","),
			"comma-separated generator sweep: "+strings.Join(generatorNames, ", "))
		format = flag.String("format", "json", `output format: "json" or "csv"`)
		out    = flag.String("o", "", "output file (default stdout)")
		bench  = flag.Bool("bench", false,
			"emit go-test benchmark lines for the benchjson ledger instead of a leaderboard")
	)
	flag.Parse()

	p := params{Seconds: *seconds, Rate: *rate, Keys: *keys, WindowSec: *winSec, Seed: *seed}
	for _, g := range strings.Split(*gens, ",") {
		if g = strings.TrimSpace(g); g != "" {
			p.Generators = append(p.Generators, g)
		}
	}
	res, err := run(p)
	if err != nil {
		fatal(err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	switch {
	case *bench:
		err = writeBench(w, res)
	case *format == "csv":
		err = writeCSV(w, res)
	case *format == "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		err = enc.Encode(res)
	default:
		err = fmt.Errorf("unknown format %q (want json or csv)", *format)
	}
	if err != nil {
		fatal(err)
	}
}

// run executes the sweep: one engine run per (generator, operator) pair,
// scored against its own exact window, ranked per generator and overall.
func run(p params) (*Output, error) {
	if p.Seconds < 1 || p.WindowSec < 1 || p.Keys < 2 || p.Rate <= 0 {
		return nil, fmt.Errorf("samplebench: bad parameters %+v", p)
	}
	if len(p.Generators) == 0 {
		return nil, fmt.Errorf("samplebench: no generators selected")
	}
	out := &Output{
		Seed: p.Seed, Seconds: p.Seconds, Rate: p.Rate, Keys: p.Keys,
		WindowSec: p.WindowSec, Generators: p.Generators,
	}
	for _, gen := range p.Generators {
		batches, err := materialize(gen, p)
		if err != nil {
			return nil, err
		}
		rows := make([]Row, 0, len(approx.Kinds()))
		for _, kind := range approx.Kinds() {
			row, err := runOne(gen, kind, p, batches)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		rankRows(rows)
		out.Rows = append(out.Rows, rows...)
	}
	out.Overall = overall(out.Rows)
	return out, nil
}

// materialize pre-generates the generator's batches so every operator
// runs over literally the same stream and timing excludes generation.
func materialize(gen string, p params) ([][]tuple.Tuple, error) {
	src, err := newGenerator(gen, p)
	if err != nil {
		return nil, err
	}
	batches := make([][]tuple.Tuple, p.Seconds)
	for i := range batches {
		start := tuple.Time(i) * tuple.Second
		ts, err := src.Slice(start, start+tuple.Second)
		if err != nil {
			return nil, fmt.Errorf("samplebench: %s batch %d: %w", gen, i, err)
		}
		batches[i] = ts
	}
	return batches, nil
}

// newGenerator builds one named workload: a key distribution plus a rate
// shape, seeded from the run seed.
func newGenerator(name string, p params) (*workload.Source, error) {
	horizon := tuple.Time(p.Seconds) * tuple.Second
	rate := workload.RateShape(workload.ConstantRate(p.Rate))
	var (
		keys workload.KeySampler
		err  error
	)
	switch name {
	case "zipf0.8":
		keys, err = workload.NewZipfSampler("k", p.Keys, 0.8)
	case "zipf2.0":
		keys, err = workload.NewZipfSampler("k", p.Keys, 2.0)
	case "hotset":
		keys, err = workload.NewHotSetSampler("k", max(p.Keys/50, 1), p.Keys, 0.9)
	case "drift":
		keys, err = workload.NewGrowingSampler("k", max(p.Keys/4, 1), p.Keys, 0, horizon)
	case "burst":
		keys, err = workload.NewZipfSampler("k", p.Keys, 1.0)
		rate = workload.StepRate{Initial: p.Rate, Steps: []workload.RateStep{
			{At: horizon / 3, Level: 4 * p.Rate},
			{At: horizon / 2, Level: p.Rate / 4},
			{At: 2 * horizon / 3, Level: p.Rate},
		}}
	default:
		return nil, fmt.Errorf("samplebench: unknown generator %q (want one of %s)",
			name, strings.Join(generatorNames, ", "))
	}
	if err != nil {
		return nil, err
	}
	return &workload.Source{Name: name, Rate: rate, Keys: keys, Seed: p.Seed}, nil
}

// runOne drives one operator over the materialized stream through the
// real engine and scores it against the run's own exact window.
func runOne(gen string, kind approx.Kind, p params, batches [][]tuple.Tuple) (Row, error) {
	cfg := engine.Config{
		BatchInterval: tuple.Second,
		MapTasks:      4,
		ReduceTasks:   4,
		Cores:         4,
		Approx:        approx.Spec{Kind: kind, Seed: uint64(p.Seed)},
	}
	win := window.Sliding(tuple.Time(p.WindowSec)*tuple.Second, tuple.Second)
	eng, err := engine.New(cfg, engine.WordCount(win))
	if err != nil {
		return Row{}, fmt.Errorf("samplebench: %s/%s: %w", gen, kind, err)
	}
	tuples := 0
	start := time.Now()
	for i, ts := range batches {
		at := tuple.Time(i) * tuple.Second
		if _, err := eng.Step(ts, at, at+tuple.Second); err != nil {
			return Row{}, fmt.Errorf("samplebench: %s/%s batch %d: %w", gen, kind, i, err)
		}
		tuples += len(ts)
	}
	elapsed := time.Since(start)
	est := eng.ApproxState()
	row := Row{
		Generator: gen,
		Operator:  string(kind),
		Error:     accuracy(kind, est, eng.WindowSnapshot()),
		Bytes:     est.Bytes(),
	}
	if tuples > 0 {
		row.NsPerOp = float64(elapsed.Nanoseconds()) / float64(tuples)
	}
	return row, nil
}

// accuracy scores one finished operator against the exact window answer
// of the same run. Lower is better; 0 is a perfect answer.
func accuracy(kind approx.Kind, est *approx.Estimator, exact map[string]float64) float64 {
	switch kind {
	case approx.CountMinKind:
		// Mean relative point-query error over every live key.
		if len(exact) == 0 {
			return 0
		}
		var sum float64
		for key, truth := range exact {
			sum += math.Abs(est.Estimate(key)-truth) / math.Max(truth, 1)
		}
		return sum / float64(len(exact))
	case approx.HLLKind:
		return math.Abs(est.Distinct()-float64(len(exact))) / math.Max(float64(len(exact)), 1)
	default:
		// Space-Saving and the samplers rank keys: score 1 − recall@10,
		// the fraction of the true top-10 the operator failed to surface.
		truth := topTrue(exact, 10)
		if len(truth) == 0 {
			return 0
		}
		got := make(map[string]bool)
		for _, e := range est.TopK(10) {
			got[e.Key] = true
		}
		hits := 0
		for _, key := range truth {
			if got[key] {
				hits++
			}
		}
		return 1 - float64(hits)/float64(len(truth))
	}
}

// topTrue returns the exact window's top-k keys by value (ties broken by
// key, so the truth set is deterministic).
func topTrue(exact map[string]float64, k int) []string {
	keys := make([]string, 0, len(exact))
	for key := range exact {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if exact[keys[i]] != exact[keys[j]] {
			return exact[keys[i]] > exact[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > k {
		keys = keys[:k]
	}
	return keys
}

// rankRows orders one generator's rows by error, then bytes, then name,
// and stamps 1-based ranks. ns/op deliberately does not participate, so
// the ranking is deterministic for a seed.
func rankRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Error != rows[j].Error {
			return rows[i].Error < rows[j].Error
		}
		if rows[i].Bytes != rows[j].Bytes {
			return rows[i].Bytes < rows[j].Bytes
		}
		return rows[i].Operator < rows[j].Operator
	})
	for i := range rows {
		rows[i].Rank = i + 1
	}
}

// overall aggregates each operator's mean error and footprint across the
// generator sweep, ranked like the per-generator rows.
func overall(rows []Row) []Overall {
	type acc struct {
		err, bytes float64
		n          int
	}
	byOp := make(map[string]*acc)
	for _, r := range rows {
		a := byOp[r.Operator]
		if a == nil {
			a = &acc{}
			byOp[r.Operator] = a
		}
		a.err += r.Error
		a.bytes += float64(r.Bytes)
		a.n++
	}
	out := make([]Overall, 0, len(byOp))
	for op, a := range byOp {
		out = append(out, Overall{
			Operator:  op,
			MeanError: a.err / float64(a.n),
			MeanBytes: a.bytes / float64(a.n),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MeanError != out[j].MeanError {
			return out[i].MeanError < out[j].MeanError
		}
		if out[i].MeanBytes != out[j].MeanBytes {
			return out[i].MeanBytes < out[j].MeanBytes
		}
		return out[i].Operator < out[j].Operator
	})
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}

// writeCSV renders the per-generator rows as a flat CSV table.
func writeCSV(w io.Writer, res *Output) error {
	if _, err := fmt.Fprintln(w, "generator,operator,rank,error,bytes,ns_per_op"); err != nil {
		return err
	}
	for _, r := range res.Rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%.6f,%d,%.1f\n",
			r.Generator, r.Operator, r.Rank, r.Error, r.Bytes, r.NsPerOp); err != nil {
			return err
		}
	}
	return nil
}

// writeBench renders the rows as `go test -bench` result lines for the
// benchjson ledger: ns/op is measured per-tuple cost, B/op the summary
// footprint, allocs/op the error in parts per million. B/op and
// allocs/op are deterministic for a seed, so a ledger gate on allocs/op
// gates accuracy.
func writeBench(w io.Writer, res *Output) error {
	for _, r := range res.Rows {
		if _, err := fmt.Fprintf(w, "BenchmarkSampleBench/%s/%s \t       1\t%12.1f ns/op\t%8d B/op\t%8.0f allocs/op\n",
			r.Generator, r.Operator, r.NsPerOp, r.Bytes, math.Round(r.Error*1e6)); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "samplebench:", err)
	os.Exit(1)
}
