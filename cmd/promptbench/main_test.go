package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"prompt/internal/experiment"
)

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a,b,c", []string{"a", "b", "c"}},
		{" a , b ", []string{"a", "b"}},
		{"", nil},
		{",,", nil},
	}
	for _, c := range cases {
		got := splitList(c.in)
		if len(got) != len(c.want) {
			t.Errorf("splitList(%q) = %v", c.in, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitList(%q)[%d] = %q", c.in, i, got[i])
			}
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1,2,3")
	if err != nil || len(got) != 3 || got[2] != 3 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad int accepted")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0.1,1.5")
	if err != nil || len(got) != 2 || got[1] != 1.5 {
		t.Errorf("parseFloats = %v, %v", got, err)
	}
	if _, err := parseFloats("0.1,zz"); err == nil {
		t.Error("bad float accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := run("nosuch", experiment.Quick(), "tweets", "1", "1.0", 5); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestRunTable1AndJSONShape(t *testing.T) {
	results, err := run("table1", experiment.Quick(), "tweets", "1", "1.0", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].ID != "table1" {
		t.Fatalf("results = %+v", results)
	}
	// The result must both print and serialize.
	var buf bytes.Buffer
	results[0].Result.Print(&buf)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
	js, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(js, []byte(`"id":"table1"`)) {
		t.Errorf("JSON missing id: %s", js[:80])
	}
}

func TestRunFig6(t *testing.T) {
	results, err := run("fig6", experiment.Quick(), "tweets", "1", "1.0", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("fig6 returned %d results, want paper + randomized", len(results))
	}
}
