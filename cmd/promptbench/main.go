// Command promptbench regenerates the paper's tables and figures on the
// simulated substrate and prints them in the same rows/series the paper
// reports. Each experiment is selected by id:
//
//	promptbench -exp table1            # dataset properties
//	promptbench -exp fig6              # B-BPFI heuristics ablation
//	promptbench -exp fig10             # partitioning metrics (BSI/BCI)
//	promptbench -exp fig11             # throughput under variable rate
//	promptbench -exp fig11d            # throughput vs Zipf exponent
//	promptbench -exp fig12             # elasticity trace
//	promptbench -exp fig13             # latency distribution
//	promptbench -exp fig14             # post-sort cost and overhead
//	promptbench -exp ablation          # design-choice ablations
//	promptbench -exp all               # everything
//
// The -scale flag trades fidelity for runtime: quick (seconds), default
// (a few minutes), full (approaches the paper's scale). With -json the
// raw result structs are emitted as a JSON array instead of tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"prompt/internal/experiment"
)

// printable is any experiment result.
type printable interface {
	Print(w io.Writer)
}

// named pairs an experiment result with its id for JSON output.
type named struct {
	ID     string    `json:"id"`
	Result printable `json:"result"`
}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id: table1|fig6|fig10|fig11|fig11d|fig12|fig13|fig14|ablation|all")
		scale     = flag.String("scale", "default", "parameter scale: quick|default|full")
		datasets  = flag.String("datasets", "tweets,tpch", "comma-separated datasets for fig10/ablation")
		intervals = flag.String("intervals", "1,2,3", "comma-separated batch intervals (seconds) for fig11")
		zs        = flag.String("z", "0.1,0.5,1.0,1.5,2.0", "comma-separated Zipf exponents for fig11d")
		batches   = flag.Int("batches", 200, "batches for fig13")
		seed      = flag.Int64("seed", 1, "workload seed")
		asJSON    = flag.Bool("json", false, "emit raw results as JSON instead of tables")
	)
	flag.Parse()

	var p experiment.Params
	switch *scale {
	case "quick":
		p = experiment.Quick()
	case "default":
		p = experiment.Default()
	case "full":
		p = experiment.Full()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}
	p.Seed = *seed

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table1", "fig6", "fig10", "fig11", "fig11d", "fig12", "fig13", "fig14", "ablation", "sizing"}
	}
	var all []named
	for _, id := range ids {
		start := time.Now()
		results, err := run(id, p, *datasets, *intervals, *zs, *batches)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			all = append(all, results...)
			continue
		}
		for _, r := range results {
			r.Result.Print(os.Stdout)
			fmt.Println()
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fatal(err)
		}
	}
}

func run(id string, p experiment.Params, datasets, intervals, zs string, batches int) ([]named, error) {
	var out []named
	add := func(id string, r printable) { out = append(out, named{ID: id, Result: r}) }
	switch id {
	case "table1":
		res, err := experiment.Table1(p)
		if err != nil {
			return nil, err
		}
		add("table1", res)
	case "fig6":
		res, err := experiment.Fig6Paper()
		if err != nil {
			return nil, err
		}
		add("fig6-paper", res)
		rnd, err := experiment.Fig6Random(p)
		if err != nil {
			return nil, err
		}
		add("fig6-random", rnd)
	case "fig10":
		for _, ds := range splitList(datasets) {
			res, err := experiment.Fig10(p, ds)
			if err != nil {
				return nil, err
			}
			add("fig10-"+ds, res)
		}
	case "fig11":
		secs, err := parseInts(intervals)
		if err != nil {
			return nil, err
		}
		for _, ds := range splitList(datasets) {
			res, err := experiment.Fig11(p, ds, secs)
			if err != nil {
				return nil, err
			}
			add("fig11-"+ds, res)
		}
	case "fig11d":
		exps, err := parseFloats(zs)
		if err != nil {
			return nil, err
		}
		res, err := experiment.Fig11Skew(p, exps, 1)
		if err != nil {
			return nil, err
		}
		add("fig11d", res)
	case "fig12":
		res, err := experiment.Fig12(p)
		if err != nil {
			return nil, err
		}
		add("fig12", res)
	case "fig13":
		res, err := experiment.Fig13(p, batches)
		if err != nil {
			return nil, err
		}
		add("fig13", res)
	case "fig14":
		a, err := experiment.Fig14a(p)
		if err != nil {
			return nil, err
		}
		add("fig14a", a)
		b, err := experiment.Fig14b(p, []int{10_000, 50_000, 100_000, 500_000, 1_000_000})
		if err != nil {
			return nil, err
		}
		add("fig14b", b)
	case "ablation":
		ablations := []struct {
			name string
			f    func(experiment.Params, string) (*experiment.AblationResult, error)
		}{
			{"dealing", experiment.AblationDealing},
			{"fragsize", experiment.AblationFragDivisor},
			{"rotation", experiment.AblationRotation},
			{"sampling", experiment.AblationSampling},
		}
		for _, ds := range splitList(datasets) {
			for _, ab := range ablations {
				res, err := ab.f(p, ds)
				if err != nil {
					return nil, err
				}
				add("ablation-"+ab.name+"-"+ds, res)
			}
		}
		slack, err := experiment.AblationSlack(p, []float64{0.0, 0.01, 0.05, 0.1})
		if err != nil {
			return nil, err
		}
		add("ablation-slack", slack)
	case "sizing":
		res, err := experiment.ExtBatchSizing(p)
		if err != nil {
			return nil, err
		}
		add("sizing", res)
	default:
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "promptbench:", err)
	os.Exit(1)
}
