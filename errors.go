package prompt

import "errors"

// Sentinel errors for programmatic handling with errors.Is. Error strings
// remain descriptive, but callers should match on these values instead of
// substrings.
var (
	// ErrBadConfig reports an invalid configuration: a non-positive batch
	// interval, an unknown scheme, out-of-range parallelism, or a query
	// the engine rejects (e.g. a window shorter than the batch interval).
	// New, NewMulti, NewWithOptions, ParseScheme, and every Option wrap
	// their validation failures in it.
	ErrBadConfig = errors.New("prompt: invalid configuration")

	// ErrNoWindow reports that a windowed answer was requested from a
	// windowless (per-batch) query. Stream.TopK and MultiStream.TopK
	// return it; Stream.HasWindow checks ahead of time.
	ErrNoWindow = errors.New("prompt: query has no window")

	// ErrNoApprox reports that an approximate answer was requested from a
	// stream with no approximate query configured. The Approx accessors
	// return it; HasApprox checks ahead of time.
	ErrNoApprox = errors.New("prompt: no approximate query configured")

	// ErrCluster reports that a configured shard cluster could not be
	// reached: dialing or handshaking a Topology shard failed even after
	// the transport's backoff. New and Restore wrap cluster connection
	// failures in it (topology shape problems wrap ErrBadConfig instead).
	ErrCluster = errors.New("prompt: cluster unavailable")
)
