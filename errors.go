package prompt

import "errors"

// Sentinel errors for programmatic handling with errors.Is. Error strings
// remain descriptive, but callers should match on these values instead of
// substrings.
var (
	// ErrBadConfig reports an invalid configuration: a non-positive batch
	// interval, an unknown scheme, out-of-range parallelism, or a query
	// the engine rejects (e.g. a window shorter than the batch interval).
	// New, NewMulti, NewWithOptions, ParseScheme, and every Option wrap
	// their validation failures in it.
	ErrBadConfig = errors.New("prompt: invalid configuration")

	// ErrNoWindow reports that a windowed answer was requested from a
	// windowless (per-batch) query. Stream.TopK and MultiStream.TopK
	// return it; Stream.HasWindow checks ahead of time.
	ErrNoWindow = errors.New("prompt: query has no window")
)
