// Multiquery runs three queries over one taxi stream with a shared
// batching phase: Prompt's statistics and partitioning execute once per
// batch, then each query runs as its own Map-Reduce job over the same data
// blocks — ride counts, fare totals, and a premium-ride filter.
package main

import (
	"fmt"
	"log"
	"time"

	"prompt"

	"prompt/internal/tuple"
	"prompt/internal/workload"
)

func main() {
	countQ := prompt.WordCount(10*time.Second, time.Second)
	countQ.Name = "rides"
	fareQ := prompt.SlidingSum("fares", 10*time.Second, time.Second)
	premiumQ := prompt.Query{
		Name: "premium-fares",
		Map: func(t prompt.Tuple) (float64, bool) {
			return t.Val, t.Val >= 30 // only rides of $30 and up
		},
	}

	ms, err := prompt.NewMultiWithOptions([]prompt.Query{countQ, fareQ, premiumQ},
		prompt.WithBatchInterval(time.Second),
		prompt.WithParallelism(8, 8),
		prompt.WithScheme(prompt.SchemePrompt),
	)
	if err != nil {
		log.Fatal(err)
	}

	src, err := workload.DEBS(workload.ConstantRate(60_000),
		workload.DatasetDefaults{Cardinality: 15_000, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("queries sharing one batching phase: %v\n", ms.Queries())
	for i := 0; i < 8; i++ {
		start := ms.Now()
		trips, err := src.Slice(start, start+tuple.Second)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := ms.ProcessBatch(trips)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 || i == 7 {
			fmt.Printf("batch %d: %d trips, all three jobs in %v (stable=%v)\n",
				rep.Index, rep.Tuples, rep.ProcessingTime.Duration().Round(time.Millisecond), rep.Stable)
		}
	}

	topRides, err := ms.TopK(0, 3)
	if err != nil {
		log.Fatal(err)
	}
	topFares, err := ms.TopK(1, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbusiest taxis (rides in window) :")
	for _, e := range topRides {
		fmt.Printf("  %-10s %6.0f rides\n", e.Key, e.Val)
	}
	fmt.Println("highest-earning taxis (window)  :")
	for _, e := range topFares {
		fmt.Printf("  %-10s $%9.2f\n", e.Key, e.Val)
	}

	premium, err := ms.Result(2)
	if err != nil {
		log.Fatal(err)
	}
	totalPremium := 0.0
	for _, v := range premium {
		totalPremium += v
	}
	fmt.Printf("premium fares last batch        : $%.2f across %d taxis\n",
		totalPremium, len(premium))
}
