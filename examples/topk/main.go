// Topk runs the TopKCount workload under heavy skew and contrasts the
// partitioning schemes the paper compares: the same Zipf(z=1.5) stream is
// processed by hash partitioning (key grouping) and by Prompt, showing how
// skew destroys hash's block balance while Prompt stays stable — the
// Figure 11d story at demo scale.
package main

import (
	"fmt"
	"log"
	"time"

	"prompt"

	"prompt/internal/tuple"
	"prompt/internal/workload"
)

func run(scheme prompt.Scheme) (*prompt.Stream, prompt.RunSummary) {
	st, err := prompt.NewWithOptions(prompt.WordCount(8*time.Second, time.Second),
		prompt.WithBatchInterval(time.Second),
		prompt.WithParallelism(8, 8),
		prompt.WithScheme(scheme),
	)
	if err != nil {
		log.Fatal(err)
	}
	// SynD with a harsh Zipf exponent: the top key draws ~40% of traffic.
	src, err := workload.SynD(workload.ConstantRate(150_000), 1.5,
		workload.DatasetDefaults{Cardinality: 100_000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		start := st.Now()
		ts, err := src.Slice(start, start+tuple.Second)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := st.ProcessBatch(ts); err != nil {
			log.Fatal(err)
		}
	}
	return st, prompt.Summarize(st.Reports())
}

func main() {
	fmt.Println("TopKCount on SynD (Zipf z=1.5, 150k tuples/s), hash vs prompt")

	for _, scheme := range []prompt.Scheme{prompt.SchemeHash, prompt.SchemePrompt} {
		st, s := run(scheme)
		last := st.Reports()[len(st.Reports())-1]
		fmt.Printf("\nscheme=%s\n", scheme)
		fmt.Printf("  block size imbalance (BSI): %8.0f tuples\n", last.Quality.BSI)
		fmt.Printf("  block card imbalance (BCI): %8.0f keys\n", last.Quality.BCI)
		fmt.Printf("  key split ratio (KSR):      %8.3f\n", last.Quality.KSR)
		fmt.Printf("  mean processing time:       %v\n", s.MeanProcessing.Duration().Round(time.Millisecond))
		fmt.Printf("  max end-to-end latency:     %v\n", s.MaxLatency.Duration().Round(time.Millisecond))
		fmt.Printf("  unstable batches:           %d of %d\n", s.UnstableCount, s.Batches)

		top, err := st.TopK(5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  top-5 keys in window:")
		for i, e := range top {
			fmt.Printf("    %d. %-8s %9.0f\n", i+1, e.Key, e.Val)
		}
	}
	fmt.Println("\nBoth schemes compute identical answers; Prompt just gets them at lower cost.")
}
