// Clustermon runs a Google-Cluster-Monitoring-style query over the GCM
// stand-in stream: the mean CPU usage per job over a sliding window,
// computed as two concurrent windowed aggregates (sum and count) with a
// filter that drops idle samples — showing custom Map functions and
// windowless per-batch results alongside windowed state.
package main

import (
	"cmp"
	"fmt"
	"log"
	"slices"
	"strings"
	"time"

	"prompt"

	"prompt/internal/tuple"
	"prompt/internal/workload"
)

func main() {
	// Query: per-job total CPU over a 10 s window, ignoring samples below
	// 5% utilization (the filter runs in the Map stage).
	busyCPU := prompt.Query{
		Name: "gcm-busy-cpu",
		Map: func(t prompt.Tuple) (float64, bool) {
			return t.Val, t.Val >= 0.05
		},
	}
	sumQ := prompt.SlidingSum("gcm-cpu-sum", 10*time.Second, time.Second)
	sumQ.Map = busyCPU.Map
	countQ := prompt.WordCount(10*time.Second, time.Second)
	countQ.Map = func(t prompt.Tuple) (float64, bool) { return 1, t.Val >= 0.05 }

	mk := func(q prompt.Query) *prompt.Stream {
		st, err := prompt.NewWithOptions(q,
			prompt.WithBatchInterval(time.Second),
			prompt.WithParallelism(8, 8),
			prompt.WithScheme(prompt.SchemePrompt),
		)
		if err != nil {
			log.Fatal(err)
		}
		return st
	}
	sums, counts := mk(sumQ), mk(countQ)

	// Two identically-seeded sources so both streams see the same events.
	mkSrc := func() *workload.Source {
		src, err := workload.GCM(workload.ConstantRate(80_000),
			workload.DatasetDefaults{Cardinality: 30_000, Seed: 99})
		if err != nil {
			log.Fatal(err)
		}
		return src
	}
	srcA, srcB := mkSrc(), mkSrc()

	fmt.Println("ingesting 10 one-second batches of cluster task events (~80k/s) ...")
	for i := 0; i < 10; i++ {
		for _, run := range []struct {
			st  *prompt.Stream
			src *workload.Source
		}{{sums, srcA}, {counts, srcB}} {
			start := run.st.Now()
			events, err := run.src.Slice(start, start+tuple.Second)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := run.st.ProcessBatch(events); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Join the two window states into mean CPU per job.
	sumWin := sums.Window()
	cntWin := counts.Window()
	type jobMean struct {
		job  string
		mean float64
		n    float64
	}
	var jobs []jobMean
	for job, total := range sumWin {
		if n := cntWin[job]; n > 0 {
			jobs = append(jobs, jobMean{job, total / n, n})
		}
	}
	slices.SortFunc(jobs, func(a, b jobMean) int {
		if a.n != b.n {
			return cmp.Compare(b.n, a.n)
		}
		return strings.Compare(a.job, b.job)
	})

	fmt.Println("\nbusiest jobs (by busy samples in the 10s window):")
	fmt.Println("  job          samples  mean CPU")
	for i := 0; i < 8 && i < len(jobs); i++ {
		fmt.Printf("  %-12s %7.0f  %8.3f\n", jobs[i].job, jobs[i].n, jobs[i].mean)
	}

	s := prompt.Summarize(sums.Reports())
	fmt.Printf("\nthroughput %.0f events/s, mean processing %v, unstable batches %d\n",
		s.Throughput, s.MeanProcessing.Duration().Round(time.Millisecond), s.UnstableCount)
}
