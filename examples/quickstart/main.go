// Quickstart: a sliding-window WordCount over a synthetic tweet stream,
// processed by the Prompt partitioning scheme — the paper's introductory
// workload. It shows the core API loop: build a Stream, feed it one batch
// interval of tuples at a time, and read windowed answers plus per-batch
// performance reports.
package main

import (
	"fmt"
	"log"
	"time"

	"prompt"

	"prompt/internal/tuple"
	"prompt/internal/workload"
)

func main() {
	// A 1-second micro-batch engine running the full Prompt scheme:
	// frequency-aware buffering, the B-BPFI batch partitioner, and the
	// worst-fit reduce allocator, on 8 simulated cores.
	st, err := prompt.NewWithOptions(prompt.WordCount(10*time.Second, time.Second),
		prompt.WithBatchInterval(time.Second),
		prompt.WithParallelism(8, 8),
		prompt.WithScheme(prompt.SchemePrompt),
		prompt.WithValidation(true), // paranoid per-batch invariant checks
	)
	if err != nil {
		log.Fatal(err)
	}

	// A Zipf-distributed word stream standing in for the paper's Tweets
	// dataset: 50k-word vocabulary at 100k tuples/second.
	src, err := workload.Tweets(workload.ConstantRate(100_000),
		workload.DatasetDefaults{Cardinality: 50_000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("processing 10 one-second batches of ~100k tweets/s ...")
	for i := 0; i < 10; i++ {
		start := st.Now()
		tuples, err := src.Slice(start, start+tuple.Second)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := st.ProcessBatch(tuples)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  batch %d: %6d tuples, %5d words, processing %v, stable=%v, KSR=%.3f\n",
			rep.Index, rep.Tuples, rep.Keys, rep.ProcessingTime.Duration().Round(time.Millisecond),
			rep.Stable, rep.Quality.KSR)
	}

	top, err := st.TopK(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-10 words in the current 10s window:")
	for i, e := range top {
		fmt.Printf("  %2d. %-8s %6.0f\n", i+1, e.Key, e.Val)
	}

	s := prompt.Summarize(st.Reports())
	fmt.Printf("\nsummary: throughput %.0f tuples/s, mean latency %v, max latency %v\n",
		s.Throughput, s.MeanLatency.Duration().Round(time.Millisecond),
		s.MaxLatency.Duration().Round(time.Millisecond))
}
