// Taxirides runs the two DEBS 2015 Grand Challenge queries of the paper's
// evaluation on the synthetic taxi-trip stream:
//
//	Query 1: total fare per taxi over a sliding window
//	Query 2: total distance per taxi over a shorter sliding window
//
// (Window spans are scaled down from the paper's 2 h / 45 min so the demo
// finishes in seconds; the structure — two concurrent windowed sum queries
// over drop-off-ordered trips — is the same.)
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"prompt"

	"prompt/internal/tuple"
	"prompt/internal/workload"
)

func main() {
	mk := func(name string, winLen, slide time.Duration) *prompt.Stream {
		st, err := prompt.NewWithOptions(prompt.SlidingSum(name, winLen, slide),
			prompt.WithBatchInterval(time.Second),
			prompt.WithParallelism(8, 8),
			prompt.WithScheme(prompt.SchemePrompt),
		)
		if err != nil {
			log.Fatal(err)
		}
		return st
	}
	q1 := mk("debs-q1-fare", 20*time.Second, 5*time.Second)
	q2 := mk("debs-q2-distance", 8*time.Second, time.Second)

	fares, err := workload.DEBS(workload.ConstantRate(50_000),
		workload.DatasetDefaults{Cardinality: 20_000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	dists, err := workload.DEBSDistance(workload.ConstantRate(50_000),
		workload.DatasetDefaults{Cardinality: 20_000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ingesting 12 one-second batches of taxi trips (~50k/s) ...")
	for i := 0; i < 12; i++ {
		for _, run := range []struct {
			st  *prompt.Stream
			src *workload.Source
		}{{q1, fares}, {q2, dists}} {
			start := run.st.Now()
			trips, err := run.src.Slice(start, start+tuple.Second)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := run.st.ProcessBatch(trips); err != nil {
				log.Fatal(err)
			}
		}
	}

	printTop := func(title, unit string, st *prompt.Stream) {
		top, err := st.TopK(5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s — top 5 taxis:\n", title)
		for i, e := range top {
			fmt.Printf("  %d. %-12s %10.2f %s\n", i+1, e.Key, e.Val, unit)
		}
	}
	printTop("Query 1: total fare over the window", "$", q1)
	printTop("Query 2: total distance over the window", "mi", q2)

	// Per-batch stability, as the paper's latency discussion frames it.
	for _, q := range []struct {
		name string
		st   *prompt.Stream
	}{{"query 1", q1}, {"query 2", q2}} {
		reports := q.st.Reports()
		ws := make([]float64, 0, len(reports))
		for _, r := range reports {
			ws = append(ws, r.W)
		}
		sort.Float64s(ws)
		fmt.Printf("\n%s: W median %.2f, max %.2f (stable while W <= 1)\n",
			q.name, ws[len(ws)/2], ws[len(ws)-1])
	}
}
