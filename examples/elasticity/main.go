// Elasticity demonstrates latency-aware auto-scaling through the public
// API: the stream starts with two tasks, the offered load ramps up 8x and
// back down, and the policy picked by WithElasticity grows and shrinks the
// Map/Reduce parallelism to keep the stability ratio W = processing time /
// batch interval inside the Zone-2 band — the Figure 12 experiment at demo
// scale. Every parallelism change also rescales the key-range owners, so
// window state migrates live between owners while the answers stay
// bit-identical to a static run.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"prompt"

	"prompt/internal/tuple"
	"prompt/internal/workload"
)

func main() {
	const batches = 36
	half := tuple.Time(batches/2) * tuple.Second

	// Offered rate: 40k -> 800k -> 40k tuples/s; key universe grows with it.
	up := workload.RampRate{From: 40_000, To: 800_000, Start: 0, End: half}
	down := workload.RampRate{From: 800_000, To: 40_000, Start: half, End: 2 * half}
	keys, err := workload.NewGrowingSampler("k", 5_000, 50_000, 0, half)
	if err != nil {
		log.Fatal(err)
	}
	src := &workload.Source{
		Name: "elastic-demo",
		Rate: upThenDown{up, down, half},
		Keys: keys,
		Seed: 11,
	}

	// One construction path: options in, elastic policy included. The
	// policy observes every batch report; when it resizes, the stream also
	// migrates key-range ownership at the same batch boundary.
	st, err := prompt.NewWithOptions(prompt.WordCount(10*time.Second, time.Second),
		prompt.WithBatchInterval(time.Second),
		prompt.WithParallelism(2, 2),
		prompt.WithCores(32),
		prompt.WithScheme(prompt.SchemePrompt),
		prompt.WithElasticity(prompt.ElasticThreshold, 2, 16),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("batch | offered/s | W    | tasks (p+r)")
	fmt.Println(strings.Repeat("-", 56))
	for i := 0; i < batches; i++ {
		start := st.Now()
		ts, err := src.Slice(start, start+tuple.Second)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := st.ProcessBatch(ts)
		if err != nil {
			log.Fatal(err)
		}
		bar := strings.Repeat("#", rep.MapTasks+rep.ReduceTasks)
		fmt.Printf("%5d | %9.0f | %4.2f | %s\n",
			rep.Index, src.Rate.RateAt(start), rep.W, bar)
	}

	s := prompt.Summarize(st.Reports())
	fmt.Printf("\nprocessed %d tuples across %d batches; %d unstable; max latency %v\n",
		s.Tuples, s.Batches, s.UnstableCount, s.MaxLatency.Duration().Round(time.Millisecond))
	fmt.Printf("key ranges now span %d owners after %d live slot migrations\n",
		st.Owners(), st.Migrations())
}

// upThenDown rises along up until mid, then follows down.
type upThenDown struct {
	up, down workload.RampRate
	mid      tuple.Time
}

// RateAt implements workload.RateShape.
func (u upThenDown) RateAt(t tuple.Time) float64 {
	if t < u.mid {
		return u.up.RateAt(t)
	}
	return u.down.RateAt(t)
}
