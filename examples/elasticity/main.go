// Elasticity demonstrates Algorithm 4 (latency-aware auto-scale): the
// engine starts with two tasks, the offered load ramps up 8x and back
// down, and the controller grows and shrinks the Map/Reduce parallelism to
// keep the stability ratio W = processing time / batch interval inside the
// Zone-2 band — the Figure 12 experiment at demo scale.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"prompt/internal/cluster"
	"prompt/internal/core"
	"prompt/internal/elastic"
	"prompt/internal/engine"
	"prompt/internal/experiment"
	"prompt/internal/tuple"
	"prompt/internal/window"
	"prompt/internal/workload"
)

func main() {
	const batches = 36
	half := tuple.Time(batches/2) * tuple.Second

	// Offered rate: 40k -> 320k -> 40k tuples/s; key universe grows with it.
	up := workload.RampRate{From: 40_000, To: 320_000, Start: 0, End: half}
	down := workload.RampRate{From: 320_000, To: 40_000, Start: half, End: 2 * half}
	keys, err := workload.NewGrowingSampler("k", 5_000, 50_000, 0, half)
	if err != nil {
		log.Fatal(err)
	}
	src := &workload.Source{
		Name: "elastic-demo",
		Rate: upThenDown{up, down, half},
		Keys: keys,
		Seed: 11,
	}

	cfg := core.PromptScheme().Apply(engine.Config{
		BatchInterval: tuple.Second,
		MapTasks:      2,
		ReduceTasks:   2,
		Cores:         2,
		Cost:          experiment.Default().Cost,
	})
	eng, err := engine.New(cfg, engine.Query{Name: "wordcount", Map: engine.CountMap, Reduce: window.Sum})
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := elastic.NewController(elastic.Config{D: 2}, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := cluster.NewExecutorPool(32, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	driver, err := core.NewElasticDriver(eng, ctrl, pool)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("batch | offered/s | W    | tasks (p+r)      | action")
	fmt.Println(strings.Repeat("-", 72))
	for i := 0; i < batches; i++ {
		start := eng.Now()
		ts, err := src.Slice(start, start+tuple.Second)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := driver.Step(ts, start, start+tuple.Second)
		if err != nil {
			log.Fatal(err)
		}
		act := driver.Actions()[len(driver.Actions())-1]
		bar := strings.Repeat("#", rep.MapTasks+rep.ReduceTasks)
		note := ""
		switch {
		case act.Direction > 0:
			note = "scale-out: " + act.Reason
		case act.Direction < 0:
			note = "scale-in: " + act.Reason
		}
		fmt.Printf("%5d | %9.0f | %4.2f | %-16s | %s\n",
			rep.Index, src.Rate.RateAt(start), rep.W, bar, note)
	}

	s := engine.Summarize(eng.Reports())
	fmt.Printf("\nprocessed %d tuples across %d batches; %d unstable; max latency %v\n",
		s.Tuples, s.Batches, s.UnstableCount, s.MaxLatency.Duration().Round(time.Millisecond))
	fmt.Printf("executors held at the end: %d of %d\n", pool.Held(), pool.Capacity())
}

// upThenDown rises along up until mid, then follows down.
type upThenDown struct {
	up, down workload.RampRate
	mid      tuple.Time
}

// RateAt implements workload.RateShape.
func (u upThenDown) RateAt(t tuple.Time) float64 {
	if t < u.mid {
		return u.up.RateAt(t)
	}
	return u.down.RateAt(t)
}
