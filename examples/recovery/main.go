// Recovery demonstrates the consistency machinery of §8: batch inputs are
// replicated while their outputs remain inside the query window, a lost
// batch output is recomputed exactly, and a full driver checkpoint lets a
// "restarted" engine resume mid-stream with identical answers.
package main

import (
	"bytes"
	"fmt"
	"log"

	"prompt/internal/core"
	"prompt/internal/engine"
	"prompt/internal/tuple"
	"prompt/internal/window"
	"prompt/internal/workload"
)

func main() {
	cfg := core.PromptScheme().Apply(engine.Config{
		BatchInterval: tuple.Second,
		MapTasks:      4,
		ReduceTasks:   4,
		Cores:         4,
	})
	q := engine.WordCount(window.Sliding(6*tuple.Second, tuple.Second))

	re, err := engine.NewRecoverable(cfg, q)
	if err != nil {
		log.Fatal(err)
	}
	src, err := workload.Tweets(workload.ConstantRate(30_000),
		workload.DatasetDefaults{Cardinality: 5_000, Seed: 77})
	if err != nil {
		log.Fatal(err)
	}

	// Run six batches, remembering batch 3's output so we can "lose" it.
	var batch3 map[string]float64
	for i := 0; i < 6; i++ {
		start := re.Now()
		ts, err := src.Slice(start, start+tuple.Second)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := re.Step(ts, start, start+tuple.Second); err != nil {
			log.Fatal(err)
		}
		if i == 3 {
			batch3 = map[string]float64{}
			for k, v := range re.LastResult() {
				batch3[k] = v
			}
		}
	}
	fmt.Printf("ran 6 batches; replica store holds %d batches (window = 6s)\n", re.Store.Len())

	// Exactly-once recovery: recompute batch 3 from its replicated input.
	recovered, err := re.Recover(3)
	if err != nil {
		log.Fatal(err)
	}
	same := len(recovered) == len(batch3)
	for k, v := range batch3 {
		if recovered[k] != v {
			same = false
			break
		}
	}
	fmt.Printf("batch 3 recomputed from replicas: %d keys, identical to the lost output: %v\n",
		len(recovered), same)

	// Driver restart: checkpoint, build a fresh engine from the image, and
	// verify both engines produce the same answers from here on.
	var img bytes.Buffer
	if err := re.Checkpoint(&img); err != nil {
		log.Fatal(err)
	}
	restarted, err := engine.Restore(cfg, []engine.Query{q}, &img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint taken at batch %d (%d bytes); restored engine resumes at t=%v\n",
		len(re.Reports()), img.Len(), restarted.Now())

	// Feed both engines the same next batch.
	start := re.Now()
	ts, err := src.Slice(start, start+tuple.Second)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := re.Step(ts, start, start+tuple.Second); err != nil {
		log.Fatal(err)
	}
	if _, err := restarted.Step(ts, start, start+tuple.Second); err != nil {
		log.Fatal(err)
	}
	a, b := re.WindowSnapshot(), restarted.WindowSnapshot()
	agree := len(a) == len(b)
	for k, v := range a {
		if b[k] != v {
			agree = false
			break
		}
	}
	fmt.Printf("original and restarted engines agree on the %d-key window: %v\n", len(a), agree)
}
