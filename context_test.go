package prompt_test

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"prompt"

	"prompt/internal/workload"
)

// TestRunContextCancelledMidBatch cancels from inside the Map function —
// the worst case: the pipeline is mid-barrier on the worker pool — and
// asserts the run stops before committing the in-flight batch, i.e.
// within one batch interval of simulated work.
func TestRunContextCancelledMidBatch(t *testing.T) {
	for _, workers := range []int{0, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var seen atomic.Int64
		q := prompt.PerBatch("cancelling",
			func(tp prompt.Tuple) (float64, bool) {
				if seen.Add(1) == 500 {
					cancel()
				}
				return 1, true
			},
			func(a, b float64) float64 { return a + b }, nil)
		st, err := prompt.New(prompt.Config{
			BatchInterval: time.Second,
			MapTasks:      4,
			ReduceTasks:   4,
			Workers:       workers,
		}, q)
		if err != nil {
			t.Fatal(err)
		}
		src, err := workload.Tweets(workload.ConstantRate(5000),
			workload.DatasetDefaults{Cardinality: 300, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		reps, rerr := st.RunContext(ctx, func(start, end prompt.Time) ([]prompt.Tuple, error) {
			return src.Slice(start, end)
		}, 10)
		if !errors.Is(rerr, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, rerr)
		}
		// The cancel fires during batch 0's Map stage: nothing commits.
		if len(reps) != 0 {
			t.Errorf("workers=%d: %d batches committed after mid-batch cancel, want 0", workers, len(reps))
		}
		if len(st.Reports()) != 0 {
			t.Errorf("workers=%d: stream kept %d reports", workers, len(st.Reports()))
		}
	}
}

// TestRunContextLeavesNoGoroutines pins the leak bound: after a
// cancelled parallel run, the process returns to its baseline goroutine
// count (the pool drains instead of abandoning workers).
func TestRunContextLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		var seen atomic.Int64
		q := prompt.PerBatch("leakcheck",
			func(tp prompt.Tuple) (float64, bool) {
				if seen.Add(1) == 100 {
					cancel()
				}
				return 1, true
			},
			func(a, b float64) float64 { return a + b }, nil)
		st, err := prompt.New(prompt.Config{Workers: 8, MapTasks: 8, ReduceTasks: 8}, q)
		if err != nil {
			t.Fatal(err)
		}
		src, err := workload.Tweets(workload.ConstantRate(5000),
			workload.DatasetDefaults{Cardinality: 300, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, rerr := st.RunContext(ctx, func(start, end prompt.Time) ([]prompt.Tuple, error) {
			return src.Slice(start, end)
		}, 5); !errors.Is(rerr, context.Canceled) {
			t.Fatalf("run %d: err = %v, want context.Canceled", i, rerr)
		}
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancelled runs", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestProcessBatchContextPreCancelled checks the fast path: an already
// cancelled context stops the batch before any source work and the
// stream stays usable with a live context afterwards.
func TestProcessBatchContextPreCancelled(t *testing.T) {
	st := testStream(t, prompt.SchemePrompt)
	src := tweetsSource(t, 3000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	ts, err := src.Slice(0, prompt.Time(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ProcessBatchContext(ctx, ts); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := st.Now(); got != 0 {
		t.Fatalf("cancelled batch advanced the clock to %v", got)
	}
	rep, err := st.ProcessBatchContext(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Index != 0 || rep.Tuples == 0 {
		t.Errorf("recovered batch report = %+v, want index 0 with tuples", rep)
	}
}

// TestMultiStreamRunContext drives the multi-query surface through the
// same context plumbing.
func TestMultiStreamRunContext(t *testing.T) {
	ms, err := prompt.NewMulti(prompt.Config{
		BatchInterval: time.Second,
		MapTasks:      4,
		ReduceTasks:   4,
	},
		prompt.SlidingSum("sum", 5*time.Second, time.Second),
		prompt.PerBatch("count", func(prompt.Tuple) (float64, bool) { return 1, true },
			func(a, b float64) float64 { return a + b }, nil))
	if err != nil {
		t.Fatal(err)
	}
	src := tweetsSource(t, 3000)
	reps, err := ms.RunContext(context.Background(), func(start, end prompt.Time) ([]prompt.Tuple, error) {
		return src.Slice(start, end)
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("got %d reports, want 3", len(reps))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ms.RunContext(ctx, func(start, end prompt.Time) ([]prompt.Tuple, error) {
		return src.Slice(start, end)
	}, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := len(ms.Reports()); got != 3 {
		t.Fatalf("cancelled run changed report count to %d", got)
	}
}

// TestFixedBatches covers the slice-backed source adapter.
func TestFixedBatches(t *testing.T) {
	st := testStream(t, prompt.SchemePrompt)
	mk := func(start prompt.Time) []prompt.Tuple {
		out := make([]prompt.Tuple, 100)
		for i := range out {
			out[i] = prompt.NewTuple(start+prompt.Time(i), "k", 1)
		}
		return out
	}
	reps, err := st.Run(prompt.FixedBatches(mk(0), mk(prompt.Time(1_000_000))), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[1].Index != 1 {
		t.Fatalf("fixed-batch run reports = %+v", reps)
	}
	if _, err := st.Run(prompt.FixedBatches(), 1); err == nil {
		t.Error("exhausted source did not error")
	}
}
