package prompt_test

import (
	"encoding/json"
	"testing"
	"time"

	"prompt"
)

// TestBatchReportMarshalJSON pins the wire format: snake_case keys,
// virtual times as integer microseconds, and a recovery block only when
// the batch actually saw fault activity.
func TestBatchReportMarshalJSON(t *testing.T) {
	plan, err := prompt.ParseFaultPlan("lose@1:fails=1")
	if err != nil {
		t.Fatal(err)
	}
	st, err := prompt.New(prompt.Config{
		BatchInterval: time.Second,
		MapTasks:      4,
		ReduceTasks:   4,
		Faults:        plan,
	}, prompt.WordCount(5*time.Second, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	src := tweetsSource(t, 3000)
	reps := feed(t, st, src, 2)

	cleanJS, err := json.Marshal(reps[0])
	if err != nil {
		t.Fatal(err)
	}
	var clean map[string]any
	if err := json.Unmarshal(cleanJS, &clean); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"scheme", "index", "tuples", "keys", "processing_us", "latency_us", "w", "stable", "bsi", "mpi"} {
		if _, ok := clean[key]; !ok {
			t.Errorf("clean report JSON missing %q: %s", key, cleanJS)
		}
	}
	if clean["scheme"] != "prompt" {
		t.Errorf("scheme = %v, want prompt", clean["scheme"])
	}
	if _, ok := clean["recovery"]; ok {
		t.Errorf("clean batch serialized a recovery block: %s", cleanJS)
	}

	lostJS, err := json.Marshal(reps[1])
	if err != nil {
		t.Fatal(err)
	}
	var lost map[string]any
	if err := json.Unmarshal(lostJS, &lost); err != nil {
		t.Fatal(err)
	}
	rec, ok := lost["recovery"].(map[string]any)
	if !ok {
		t.Fatalf("recovered batch JSON has no recovery block: %s", lostJS)
	}
	if rec["attempts"] != float64(2) {
		t.Errorf("recovery attempts = %v, want 2", rec["attempts"])
	}
	if rec["time_us"] == float64(0) {
		t.Error("recovery time_us is zero")
	}
	if us, ok := lost["processing_us"].(float64); !ok || us <= 0 {
		t.Errorf("processing_us = %v, want positive integer microseconds", lost["processing_us"])
	}
}
