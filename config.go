package prompt

import (
	"fmt"
	"time"

	"prompt/internal/core"
	"prompt/internal/engine"
	"prompt/internal/partition"
	"prompt/internal/tuple"
)

// Config configures a Stream. The zero value runs Prompt with the
// evaluation defaults (1 s batches, 8 Map and 8 Reduce tasks).
type Config struct {
	// BatchInterval is the micro-batch heartbeat; it bounds end-to-end
	// latency (latency = interval + processing time while stable).
	BatchInterval time.Duration
	// MapTasks (p) and ReduceTasks (r) set the execution parallelism.
	MapTasks    int
	ReduceTasks int
	// Cores is the simulated core budget for stage execution; 0 means one
	// core per Map task.
	Cores int
	// Scheme selects the partitioning technique: "prompt" (default),
	// "prompt-postsort", or a baseline: "time", "shuffle", "hash", "pk2",
	// "pk5", "cam", "ffd", "fragmin".
	Scheme string
	// EarlyReleaseFraction is the slice of the batch interval reserved for
	// partitioning (default 0.05, the paper's bound).
	EarlyReleaseFraction float64
	// Validate enables per-batch invariant checks (tuples placed exactly
	// once, key locality at the Reduce stage).
	Validate bool
	// Cost overrides the simulated task cost model; zero uses defaults.
	Cost CostModel
}

// SchemeNames lists the accepted Scheme values.
func SchemeNames() []string {
	return append(partition.Names(), "prompt-postsort")
}

// build resolves the configuration into an engine config and scheme.
func (c Config) build() (engine.Config, core.Scheme, error) {
	var scheme core.Scheme
	switch c.Scheme {
	case "", "prompt":
		scheme = core.PromptScheme()
	case "prompt-postsort":
		scheme = core.PromptPostSort()
	default:
		s, err := core.Baseline(c.Scheme)
		if err != nil {
			return engine.Config{}, core.Scheme{}, err
		}
		scheme = s
	}
	interval := tuple.FromDuration(c.BatchInterval)
	if c.BatchInterval == 0 {
		interval = tuple.Second
	} else if interval <= 0 {
		return engine.Config{}, core.Scheme{}, fmt.Errorf("prompt: batch interval %v must be positive", c.BatchInterval)
	}
	ec := engine.Config{
		BatchInterval:        interval,
		MapTasks:             c.MapTasks,
		ReduceTasks:          c.ReduceTasks,
		Cores:                c.Cores,
		Cost:                 c.Cost,
		EarlyReleaseFraction: c.EarlyReleaseFraction,
		ValidateBatches:      c.Validate,
	}
	ec = scheme.Apply(ec)
	return ec, scheme, nil
}
