package prompt

import (
	"fmt"

	"time"

	"prompt/internal/core"
	"prompt/internal/engine"
	"prompt/internal/tuple"
)

// Config configures a Stream. The zero value runs Prompt with the
// evaluation defaults (1 s batches, 8 Map and 8 Reduce tasks) on the
// classic single-goroutine driver. NewWithOptions offers the same knobs
// as functional options.
type Config struct {
	// BatchInterval is the micro-batch heartbeat; it bounds end-to-end
	// latency (latency = interval + processing time while stable).
	BatchInterval time.Duration
	// MapTasks (p) and ReduceTasks (r) set the execution parallelism.
	MapTasks    int
	ReduceTasks int
	// Cores is the simulated core budget for stage execution; 0 means one
	// core per Map task.
	Cores int
	// Workers is the number of real OS worker goroutines executing the
	// batch pipeline (Map tasks, Reduce folds, per-query jobs, window
	// merges, statistics shards). 0 keeps the single-goroutine driver;
	// negative selects GOMAXPROCS. Workers changes wall-clock time only:
	// reports are identical at any worker count.
	Workers int
	// StatsShards splits the Algorithm 1 statistics pass across that many
	// accumulator shards with a deterministic merge at the heartbeat.
	// 0 or 1 keeps the single accumulator. See engine.Config.StatsShards.
	StatsShards int
	// Scheme selects the partitioning technique; the zero value selects
	// SchemePrompt. See the Scheme constants and ParseScheme.
	Scheme Scheme
	// EarlyReleaseFraction is the slice of the batch interval reserved for
	// partitioning (default 0.05, the paper's bound).
	EarlyReleaseFraction float64
	// Validate enables per-batch invariant checks (tuples placed exactly
	// once, key locality at the Reduce stage).
	Validate bool
	// Columnar routes row ingestion (ProcessBatch, Run) through the
	// columnar hot path: each batch is transposed into a
	// struct-of-arrays layout at the boundary and the statistics and
	// partitioning folds run over dense columns. Reports and answers are
	// bit-identical to row mode. Callers that can build columns upstream
	// should prefer ProcessBatchColumnar or a Receiver, which skip the
	// transpose.
	Columnar bool
	// PipelineDepth bounds how many consecutive batches may be in flight
	// at once when the stream drives itself from a source (Run,
	// RunContext): while batch k executes and commits, batch k+1 may
	// already be accumulating statistics and partitioning. Commits stay
	// strictly serialized in batch order, so reports, windowed answers,
	// and checkpoints are bit-identical to depth 1 — pipelining changes
	// wall-clock time only. 0 or 1 keeps the classic one-batch-at-a-time
	// driver; elastic streams always run one batch at a time (the policy
	// must observe each report before the next batch starts), as do
	// ProcessBatch calls.
	PipelineDepth int
	// Cost overrides the simulated task cost model; zero uses defaults.
	Cost CostModel
	// Observer, when set, receives batch-lifecycle events (batch start,
	// per-stage timings, batch end); see Observer and Collector. Nil —
	// the default — keeps the pipeline instrumentation-free.
	Observer Observer
	// Faults, when set, scripts deterministic failure injection for the
	// run; see FaultPlan and WithFaultPlan. Nil runs fault-free.
	Faults *FaultPlan
	// Retry tunes the recovery response to injected faults; the zero
	// value selects the defaults. See RetryPolicy.
	Retry RetryPolicy
	// Topology, when non-zero, scatters the data-plane folds across a
	// shard cluster — in-process (Local) or over sockets (Shards) — with
	// bit-identical reports and answers. See Topology, WithShards, and
	// WithTransport. The zero value keeps everything in-process.
	Topology Topology
	// Approx, when its Kind is set, runs an approximate query next to the
	// exact one: a bounded-memory summary (sketch or sampler) folded from
	// the exact per-key results at every batch commit, answering
	// point-frequency, top-k, and distinct-count questions with
	// advertised error bounds through the Approx accessors. Approximate
	// answers are bit-identical across worker counts, ingestion layouts,
	// pipelining, topologies, and checkpoint/restore. See ApproxQuery and
	// WithApproxQuery. The zero value disables the tier.
	Approx ApproxQuery
	// Elasticity, when enabled, turns the stream elastic: after every
	// batch the configured policy observes the report and may change the
	// Map and Reduce parallelism, with key-range ownership following the
	// Map task count — the window state of reassigned key ranges migrates
	// bit-identically at the next batch boundary, so reports and answers
	// match a static run. See Elasticity and WithElasticity. The zero
	// value keeps the parallelism static.
	Elasticity Elasticity
}

// build resolves the configuration into an engine config and scheme.
func (c Config) build() (engine.Config, core.Scheme, error) {
	scheme, err := c.Scheme.resolve()
	if err != nil {
		return engine.Config{}, core.Scheme{}, err
	}
	interval := tuple.FromDuration(c.BatchInterval)
	if c.BatchInterval == 0 {
		interval = tuple.Second
	} else if interval <= 0 {
		return engine.Config{}, core.Scheme{}, fmt.Errorf("%w: batch interval %v must be positive", ErrBadConfig, c.BatchInterval)
	}
	ec := engine.Config{
		BatchInterval:        interval,
		MapTasks:             c.MapTasks,
		ReduceTasks:          c.ReduceTasks,
		Cores:                c.Cores,
		Workers:              c.Workers,
		StatsShards:          c.StatsShards,
		Cost:                 c.Cost,
		EarlyReleaseFraction: c.EarlyReleaseFraction,
		ValidateBatches:      c.Validate,
		ColumnarIngest:       c.Columnar,
		PipelineDepth:        c.PipelineDepth,
		Observer:             c.Observer,
		Faults:               c.Faults,
		Retry:                c.Retry,
		Approx:               c.Approx.spec(),
	}
	ec = scheme.Apply(ec)
	return ec, scheme, nil
}
