package prompt

import "testing"

// TestSummarizeRoundsMeansHalfUp pins the mean rounding convention: the
// per-batch sums are divided with round-half-up, not truncated. Three
// batches with processing 1, 1, 2 (sum 4) average 4/3 = 1.33.., which
// rounds to 1; latencies 2, 2, 3 (sum 7) average 7/3 = 2.33.. -> 2; and
// processing 1, 2, 2 (sum 5) averages 5/3 = 1.66.., which truncation
// would report as 1 but half-up rounds to 2.
func TestSummarizeRoundsMeansHalfUp(t *testing.T) {
	reports := []BatchReport{
		{ProcessingTime: 1, Latency: 2},
		{ProcessingTime: 2, Latency: 2},
		{ProcessingTime: 2, Latency: 3},
	}
	s := Summarize(reports)
	if s.MeanProcessing != 2 {
		t.Errorf("MeanProcessing = %d, want 2 (5/3 rounded half-up)", s.MeanProcessing)
	}
	if s.MeanLatency != 2 {
		t.Errorf("MeanLatency = %d, want 2 (7/3 rounded half-up)", s.MeanLatency)
	}
}

// TestSummarizeExactHalfRoundsUp pins the half-way case: 2/4 batches at 0
// and 2 at 1 sum to 2, and 2/4 = 0.5 rounds up to 1.
func TestSummarizeExactHalfRoundsUp(t *testing.T) {
	reports := []BatchReport{
		{ProcessingTime: 0, Latency: 0},
		{ProcessingTime: 0, Latency: 0},
		{ProcessingTime: 1, Latency: 1},
		{ProcessingTime: 1, Latency: 1},
	}
	s := Summarize(reports)
	if s.MeanProcessing != 1 {
		t.Errorf("MeanProcessing = %d, want 1 (2/4 rounded half-up)", s.MeanProcessing)
	}
	if s.MeanLatency != 1 {
		t.Errorf("MeanLatency = %d, want 1 (2/4 rounded half-up)", s.MeanLatency)
	}
}
