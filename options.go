package prompt

import (
	"fmt"
	"time"

	"prompt/internal/engine"
)

// Option adjusts a Config under construction. Options validate eagerly:
// an out-of-range value fails NewWithOptions with an error wrapping
// ErrBadConfig, naming the offending option.
type Option func(*Config) error

// NewWithOptions builds a Stream for the query from functional options
// layered over the zero Config (the evaluation defaults):
//
//	st, err := prompt.NewWithOptions(q,
//		prompt.WithBatchInterval(500*time.Millisecond),
//		prompt.WithParallelism(16, 16),
//		prompt.WithScheme(prompt.SchemePrompt),
//		prompt.WithWorkers(-1), // GOMAXPROCS goroutines
//	)
func NewWithOptions(q Query, opts ...Option) (*Stream, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	return New(cfg, q)
}

// NewMultiWithOptions builds a MultiStream for the queries from the same
// functional options — the options-first spelling of NewMulti, and the
// construction path New, NewMulti, and NewWithOptions all reduce to. At
// least one query is required.
func NewMultiWithOptions(queries []Query, opts ...Option) (*MultiStream, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	return NewMulti(cfg, queries...)
}

// WithBatchInterval sets the micro-batch heartbeat.
func WithBatchInterval(d time.Duration) Option {
	return func(c *Config) error {
		if d <= 0 {
			return fmt.Errorf("%w: WithBatchInterval(%v): interval must be positive", ErrBadConfig, d)
		}
		c.BatchInterval = d
		return nil
	}
}

// WithParallelism sets the Map (p) and Reduce (r) task counts.
func WithParallelism(mapTasks, reduceTasks int) Option {
	return func(c *Config) error {
		if mapTasks <= 0 || reduceTasks <= 0 {
			return fmt.Errorf("%w: WithParallelism(%d, %d): task counts must be positive", ErrBadConfig, mapTasks, reduceTasks)
		}
		c.MapTasks = mapTasks
		c.ReduceTasks = reduceTasks
		return nil
	}
}

// WithScheme selects the partitioning technique; the name is validated
// immediately.
func WithScheme(s Scheme) Option {
	return func(c *Config) error {
		parsed, err := ParseScheme(string(s))
		if err != nil {
			return err
		}
		c.Scheme = parsed
		return nil
	}
}

// WithCores sets the simulated core budget for stage execution.
func WithCores(cores int) Option {
	return func(c *Config) error {
		if cores <= 0 {
			return fmt.Errorf("%w: WithCores(%d): cores must be positive", ErrBadConfig, cores)
		}
		c.Cores = cores
		return nil
	}
}

// WithWorkers sets the number of real worker goroutines executing the
// batch pipeline. Zero keeps the single-goroutine driver; negative
// selects GOMAXPROCS. Reports are identical at any worker count.
func WithWorkers(workers int) Option {
	return func(c *Config) error {
		c.Workers = workers
		return nil
	}
}

// WithStatsShards splits the Algorithm 1 statistics pass across shards
// (>= 1) merged deterministically at the heartbeat.
func WithStatsShards(shards int) Option {
	return func(c *Config) error {
		if shards < 1 {
			return fmt.Errorf("%w: WithStatsShards(%d): need >= 1 shard", ErrBadConfig, shards)
		}
		c.StatsShards = shards
		return nil
	}
}

// WithEarlyRelease sets the fraction of the batch interval reserved for
// partitioning (the paper bounds it at 0.05).
func WithEarlyRelease(fraction float64) Option {
	return func(c *Config) error {
		if fraction < 0 || fraction > 0.5 {
			return fmt.Errorf("%w: WithEarlyRelease(%v): fraction outside [0, 0.5]", ErrBadConfig, fraction)
		}
		c.EarlyReleaseFraction = fraction
		return nil
	}
}

// WithObserver registers a batch-lifecycle observer (see Observer and
// Collector). Calling it more than once composes the observers: each
// receives every event in registration order.
func WithObserver(obs Observer) Option {
	return func(c *Config) error {
		if obs == nil {
			return fmt.Errorf("%w: WithObserver(nil): observer must not be nil", ErrBadConfig)
		}
		switch prev := c.Observer.(type) {
		case nil:
			c.Observer = obs
		case MultiObserver:
			c.Observer = append(prev, obs)
		default:
			c.Observer = MultiObserver{prev, obs}
		}
		return nil
	}
}

// WithValidation toggles per-batch invariant checking.
func WithValidation(on bool) Option {
	return func(c *Config) error {
		c.Validate = on
		return nil
	}
}

// WithColumnar toggles the columnar hot path for row ingestion; see
// Config.Columnar.
func WithColumnar(on bool) Option {
	return func(c *Config) error {
		c.Columnar = on
		return nil
	}
}

// WithPipelineDepth bounds how many consecutive batches Run may keep in
// flight at once; see Config.PipelineDepth. Depth 0 or 1 keeps the
// classic one-batch-at-a-time driver. Pipelining never changes reports,
// answers, or checkpoints — only wall-clock time.
func WithPipelineDepth(depth int) Option {
	return func(c *Config) error {
		if depth < 0 || depth > engine.MaxPipelineDepth {
			return fmt.Errorf("%w: WithPipelineDepth(%d): depth outside [0, %d]", ErrBadConfig, depth, engine.MaxPipelineDepth)
		}
		c.PipelineDepth = depth
		return nil
	}
}

// WithCost overrides the simulated task cost model; the zero model keeps
// the defaults.
func WithCost(cm CostModel) Option {
	return func(c *Config) error {
		if cm != (CostModel{}) {
			if err := cm.Validate(); err != nil {
				return fmt.Errorf("%w: WithCost: %v", ErrBadConfig, err)
			}
		}
		c.Cost = cm
		return nil
	}
}

// WithElasticity turns the stream elastic: after every batch the policy
// observes the report and may change the Map and Reduce parallelism
// within [min, max] tasks per stage (min 0 means 1, max 0 leaves
// scale-out unbounded). Key-range ownership follows the Map task count,
// and the window state of reassigned ranges migrates bit-identically at
// the batch boundary — elastic runs report the same answers as static
// ones. See ElasticThreshold, ElasticPredictive, and ElasticCostAware.
func WithElasticity(policy ElasticPolicy, min, max int) Option {
	return func(c *Config) error {
		if _, err := ParseElasticPolicy(string(policy)); err != nil {
			return fmt.Errorf("WithElasticity: %w", err)
		}
		if min < 0 || (max != 0 && max < min) || max < 0 {
			return fmt.Errorf("%w: WithElasticity(%q, %d, %d): bounds are inverted", ErrBadConfig, policy, min, max)
		}
		c.Elasticity = Elasticity{Policy: policy, MinTasks: min, MaxTasks: max}
		return nil
	}
}
